//! Trace reports: an ordered collection of [`TraceEvent`]s with
//! NDJSON (de)serialization and a human-readable renderer.

use crate::event::{ParseError, TraceEvent};
use std::fmt::Write as _;

/// An ordered trace — the unit the NDJSON emitters write and the
/// `casch trace` report command reads back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    events: Vec<TraceEvent>,
}

/// One candidate processor probed while placing a node, as read back
/// from a trace (see [`Report::placements_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateProbe {
    /// The probed processor.
    pub proc: u64,
    /// The processor's ready time at probe time.
    pub ready: u64,
    /// The node's data-arrival time on this processor.
    pub dat: u64,
    /// The start time this candidate offered: `max(ready, dat)`.
    pub start: u64,
}

/// The full provenance of one placement decision: every candidate
/// probed plus the winner and the reason it won.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The placed node.
    pub node: u64,
    /// The winning processor.
    pub proc: u64,
    /// The start time the node got.
    pub start: u64,
    /// Why the winner won.
    pub reason: String,
    /// Every candidate probed for this node, in probe order.
    pub candidates: Vec<CandidateProbe>,
}

/// One local-search transfer probe read back from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Zero-based probe index.
    pub step: u64,
    /// The moved node.
    pub node: u64,
    /// Processor before the probe.
    pub from: u64,
    /// Processor the probe moved it to.
    pub to: u64,
    /// Schedule length after the step.
    pub makespan: u64,
    /// Whether the move was committed.
    pub accepted: bool,
}

impl Report {
    /// A report over an explicit event list.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Report { events }
    }

    /// The events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Append another report's events (used to concatenate the traces
    /// of several workloads into one file).
    pub fn extend(&mut self, other: Report) {
        self.events.extend(other.events);
    }

    /// Serialize as NDJSON: one event per line, trailing newline.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_ndjson_line());
            out.push('\n');
        }
        out
    }

    /// Parse an NDJSON trace. Blank lines are skipped; any malformed
    /// line fails the whole parse with its 1-based line number.
    ///
    /// ```
    /// use fastsched_trace::Report;
    ///
    /// let text = "\
    /// {\"type\":\"meta\",\"key\":\"algo\",\"value\":\"FAST\"}
    /// {\"type\":\"counter\",\"name\":\"probes_accepted\",\"value\":3}
    /// ";
    /// let report = Report::from_ndjson(text).unwrap();
    /// assert_eq!(report.events().len(), 2);
    /// assert_eq!(report.counter("probes_accepted"), Some(3));
    /// assert!(Report::from_ndjson("{oops}").is_err());
    /// ```
    pub fn from_ndjson(text: &str) -> Result<Self, ParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(TraceEvent::parse_line(line).map_err(|e| e.at_line(i + 1))?);
        }
        Ok(Report { events })
    }

    /// Sum of all `counter` events with this name (a merged multi-
    /// workload file may carry several), or `None` if there are none.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let mut sum = None;
        for e in &self.events {
            if let TraceEvent::Counter { name: n, value } = e {
                if n == name {
                    *sum.get_or_insert(0) += value;
                }
            }
        }
        sum
    }

    /// All `(name, total micros)` phase timings, in first-seen order,
    /// summing repeats.
    pub fn phase_totals(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for e in &self.events {
            if let TraceEvent::Phase { name, micros } = e {
                match out.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += micros,
                    None => out.push((name.clone(), *micros)),
                }
            }
        }
        out
    }

    /// All `(name, total)` counters, in first-seen order, summing
    /// repeats.
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for e in &self.events {
            if let TraceEvent::Counter { name, value } = e {
                match out.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += value,
                    None => out.push((name.clone(), *value)),
                }
            }
        }
        out
    }

    /// The schedule-length trajectory: best-known makespan after each
    /// recorded step, in recording order.
    pub fn trajectory(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Step { makespan, .. } => Some(*makespan),
                _ => None,
            })
            .collect()
    }

    /// All placement decisions recorded for `node`, each with the
    /// candidate probes that preceded it (a merged multi-chain trace
    /// may carry several decisions for the same node — they appear in
    /// chain-merge order).
    pub fn placements_of(&self, node: u64) -> Vec<Placement> {
        let mut out = Vec::new();
        let mut pending: Vec<CandidateProbe> = Vec::new();
        for e in &self.events {
            match e {
                TraceEvent::Candidate {
                    node: n,
                    proc,
                    ready,
                    dat,
                    start,
                } if *n == node => pending.push(CandidateProbe {
                    proc: *proc,
                    ready: *ready,
                    dat: *dat,
                    start: *start,
                }),
                TraceEvent::Placed {
                    node: n,
                    proc,
                    start,
                    reason,
                } if *n == node => out.push(Placement {
                    node,
                    proc: *proc,
                    start: *start,
                    reason: reason.clone(),
                    candidates: std::mem::take(&mut pending),
                }),
                _ => {}
            }
        }
        out
    }

    /// Distinct nodes that have at least one `placed` event, in
    /// first-seen order.
    pub fn placed_nodes(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.events {
            if let TraceEvent::Placed { node, .. } = e {
                if !out.contains(node) {
                    out.push(*node);
                }
            }
        }
        out
    }

    /// All local-search transfer probes that touched `node`, in
    /// recording order.
    pub fn transfers_of(&self, node: u64) -> Vec<TransferRecord> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transfer {
                    step,
                    node: n,
                    from,
                    to,
                    makespan,
                    accepted,
                } if *n == node => Some(TransferRecord {
                    step: *step,
                    node: *n,
                    from: *from,
                    to: *to,
                    makespan: *makespan,
                    accepted: *accepted,
                }),
                _ => None,
            })
            .collect()
    }

    /// Render the human-readable report: metadata, phase times,
    /// counters and (when steps were recorded) the trajectory
    /// sparkline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let metas: Vec<_> = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Meta { key, value } => Some((key, value)),
                _ => None,
            })
            .collect();
        if !metas.is_empty() {
            writeln!(out, "== trace metadata ==").unwrap();
            for (k, v) in metas {
                writeln!(out, "  {k:<24} {v}").unwrap();
            }
        }
        let phases = self.phase_totals();
        if !phases.is_empty() {
            let total: u64 = phases.iter().map(|(_, us)| us).sum();
            writeln!(out, "== phase times ==").unwrap();
            for (name, us) in &phases {
                writeln!(
                    out,
                    "  {name:<24} {:>12.3} ms  ({:>5.1}%)",
                    *us as f64 / 1e3,
                    100.0 * *us as f64 / total.max(1) as f64
                )
                .unwrap();
            }
        }
        let counters = self.counter_totals();
        if !counters.is_empty() {
            writeln!(out, "== search counters ==").unwrap();
            for (name, v) in &counters {
                writeln!(out, "  {name:<24} {v:>12}").unwrap();
            }
            let attempted = self.counter("probes_attempted").unwrap_or(0);
            let accepted = self.counter("probes_accepted").unwrap_or(0);
            if attempted > 0 {
                writeln!(
                    out,
                    "  {:<24} {:>11.1}%",
                    "acceptance rate",
                    100.0 * accepted as f64 / attempted as f64
                )
                .unwrap();
            }
        }
        let placements = self.placed_nodes().len();
        let transfers = self
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transfer { .. }))
            .count();
        if placements > 0 || transfers > 0 {
            writeln!(out, "== placement provenance ==").unwrap();
            writeln!(
                out,
                "  {placements} placement decisions, {transfers} transfer probes \
                 (query with `casch explain --node <id>`)"
            )
            .unwrap();
        }
        let traj = self.trajectory();
        if !traj.is_empty() {
            let first = traj[0];
            let last = *traj.last().unwrap();
            let best = *traj.iter().min().unwrap();
            writeln!(out, "== schedule-length trajectory ==").unwrap();
            writeln!(
                out,
                "  {} steps, {first} -> {last} (best {best}, {:.2}% improvement)",
                traj.len(),
                100.0 * (first.saturating_sub(best)) as f64 / first.max(1) as f64
            )
            .unwrap();
            writeln!(out, "  [{}]", sparkline(&traj, 64)).unwrap();
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

/// Render `values` as a fixed-width ASCII sparkline: each column is
/// the mean of its bucket, scaled between the series min and max onto
/// the glyph ramp `_.:-=+*#%@` (low to high). A constant series is
/// all-middle; an empty series is an empty string.
///
/// ```
/// use fastsched_trace::sparkline;
///
/// assert_eq!(sparkline(&[0, 9], 2), "_@");
/// assert_eq!(sparkline(&[], 8), "");
/// let line = sparkline(&[9, 9, 8, 7, 7, 5, 3, 0], 8);
/// assert_eq!(line.len(), 8);
/// assert!(line.starts_with('@') && line.ends_with('_'));
/// ```
pub fn sparkline(values: &[u64], width: usize) -> String {
    const RAMP: &[u8] = b"_.:-=+*#%@";
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let lo = *values.iter().min().unwrap();
    let hi = *values.iter().max().unwrap();
    let width = width.min(values.len());
    let mut out = String::with_capacity(width);
    for col in 0..width {
        // Even bucketing of the series over `width` columns.
        let a = col * values.len() / width;
        let b = ((col + 1) * values.len() / width).max(a + 1);
        let bucket = &values[a..b];
        let mean = bucket.iter().sum::<u64>() as f64 / bucket.len() as f64;
        let level = if hi == lo {
            RAMP.len() / 2
        } else {
            let t = (mean - lo as f64) / (hi - lo) as f64;
            ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
        };
        out.push(RAMP[level] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(vec![
            TraceEvent::meta("algo", "FAST"),
            TraceEvent::meta("workload", "random v=500"),
            TraceEvent::Phase {
                name: "list_construction".into(),
                micros: 100,
            },
            TraceEvent::Phase {
                name: "local_search".into(),
                micros: 900,
            },
            TraceEvent::Counter {
                name: "probes_attempted".into(),
                value: 10,
            },
            TraceEvent::Counter {
                name: "probes_accepted".into(),
                value: 4,
            },
            TraceEvent::Step {
                step: 0,
                makespan: 20,
                accepted: true,
            },
            TraceEvent::Step {
                step: 1,
                makespan: 18,
                accepted: true,
            },
            TraceEvent::Step {
                step: 2,
                makespan: 18,
                accepted: false,
            },
        ])
    }

    #[test]
    fn ndjson_round_trip_preserves_event_order_and_content() {
        let r = sample();
        let back = Report::from_ndjson(&r.to_ndjson()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn parse_reports_the_failing_line() {
        let mut text = sample().to_ndjson();
        text.push_str("BROKEN\n");
        let err = Report::from_ndjson(&text).unwrap_err();
        assert_eq!(err.line, Some(10));
    }

    #[test]
    fn aggregations_sum_repeats() {
        let mut r = sample();
        r.extend(sample());
        assert_eq!(r.counter("probes_attempted"), Some(20));
        assert_eq!(r.counter("no_such_counter"), None);
        assert_eq!(
            r.phase_totals(),
            vec![
                ("list_construction".to_string(), 200),
                ("local_search".to_string(), 1800)
            ]
        );
        assert_eq!(r.trajectory(), vec![20, 18, 18, 20, 18, 18]);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render();
        assert!(text.contains("trace metadata"));
        assert!(text.contains("phase times"));
        assert!(text.contains("search counters"));
        assert!(text.contains("acceptance rate"));
        assert!(text.contains("trajectory"));
        assert_eq!(Report::default().render(), "(empty trace)\n");
    }

    #[test]
    fn sparkline_is_monotone_for_monotone_series() {
        let falling: Vec<u64> = (0..100).rev().collect();
        let line = sparkline(&falling, 32);
        assert_eq!(line.len(), 32);
        assert!(line.starts_with('@'));
        assert!(line.ends_with('_'));
        assert_eq!(sparkline(&[5, 5, 5], 3), "+++");
    }
}
