//! The recording side (`capture` feature on): real collectors.
//!
//! A collector is owned by exactly one search (or one search chain):
//! all counters are plain `u64`s bumped on the owning thread — no
//! atomics anywhere near the probe loop. Parallel drivers give each
//! chain its own [`SearchTrace`] and fold them together with
//! [`SearchTrace::merge`] after joining, in chain order, so the merged
//! totals are deterministic for a fixed `(seed, chains)` pair.

use crate::event::TraceEvent;
use crate::report::Report;
use std::time::{Duration, Instant};

/// Default bound of the trajectory ring buffer (entries).
pub const DEFAULT_TRAJECTORY_CAPACITY: usize = 8192;

/// Low-level counters of the incremental evaluation engine
/// ([`DeltaEvaluator`](../fastsched_schedule/struct.DeltaEvaluator.html)):
/// how much work each probe's dirty-suffix walk actually did.
///
/// With the `capture` feature off this is a zero-sized no-op type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Incremental (dirty-suffix) probe evaluations started.
    pub incremental_probes: u64,
    /// Bounded probes that bailed out early at the cutoff.
    pub incremental_probes_aborted: u64,
    /// Full O(v + e) replays (evaluator seeding).
    pub full_evaluations: u64,
    /// Order positions inspected by dirty-suffix walks (clean skips
    /// included — this is the true suffix length walked).
    pub dirty_nodes_visited: u64,
    /// Nodes whose start/finish a walk actually recomputed.
    pub nodes_recomputed: u64,
    /// Successor edges tested for a dirty mark.
    pub edge_marks_tested: u64,
    /// Sorted slack segments reused as-is (no re-sort needed).
    pub slack_cache_hits: u64,
    /// Slack segments re-sorted on first use after invalidation.
    pub slack_cache_misses: u64,
    /// Full O(e) slack-cache rebuilds (after commits).
    pub slack_rebuilds: u64,
    /// Probes accepted into the committed state.
    pub commits: u64,
    /// Probes rolled back from the undo log.
    pub reverts: u64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $method:ident => $field:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $method(&mut self) {
                self.$field += 1;
            }
        )+
    };
}

impl EvalStats {
    bump! {
        /// Count one incremental probe evaluation.
        on_probe => incremental_probes,
        /// Count one bounded probe aborting at its cutoff.
        on_probe_aborted => incremental_probes_aborted,
        /// Count one full O(v + e) replay.
        on_full_eval => full_evaluations,
        /// Count one order position visited by a dirty-suffix walk.
        on_node_walked => dirty_nodes_visited,
        /// Count one node recompute inside a walk.
        on_node_recomputed => nodes_recomputed,
        /// Count one successor edge tested for a mark.
        on_edge_mark => edge_marks_tested,
        /// Count one sorted slack segment reused without a re-sort.
        on_slack_hit => slack_cache_hits,
        /// Count one slack segment re-sorted on first use.
        on_slack_miss => slack_cache_misses,
        /// Count one full slack-cache rebuild.
        on_slack_rebuild => slack_rebuilds,
        /// Count one committed probe.
        on_commit => commits,
        /// Count one reverted probe.
        on_revert => reverts,
    }

    /// Add another collector's totals into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.incremental_probes += other.incremental_probes;
        self.incremental_probes_aborted += other.incremental_probes_aborted;
        self.full_evaluations += other.full_evaluations;
        self.dirty_nodes_visited += other.dirty_nodes_visited;
        self.nodes_recomputed += other.nodes_recomputed;
        self.edge_marks_tested += other.edge_marks_tested;
        self.slack_cache_hits += other.slack_cache_hits;
        self.slack_cache_misses += other.slack_cache_misses;
        self.slack_rebuilds += other.slack_rebuilds;
        self.commits += other.commits;
        self.reverts += other.reverts;
    }

    /// `(name, value)` pairs in emission order (the NDJSON counter
    /// names of DESIGN.md § Observability).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("incremental_probes", self.incremental_probes),
            (
                "incremental_probes_aborted",
                self.incremental_probes_aborted,
            ),
            ("full_evaluations", self.full_evaluations),
            ("dirty_nodes_visited", self.dirty_nodes_visited),
            ("nodes_recomputed", self.nodes_recomputed),
            ("edge_marks_tested", self.edge_marks_tested),
            ("slack_cache_hits", self.slack_cache_hits),
            ("slack_cache_misses", self.slack_cache_misses),
            ("slack_rebuilds", self.slack_rebuilds),
            ("commits", self.commits),
            ("reverts", self.reverts),
        ]
    }
}

/// Bounded ring buffer of `(step, makespan, accepted)` trajectory
/// entries: pushes past the capacity overwrite the oldest entry and
/// are tallied in `dropped`.
#[derive(Debug, Clone, Default)]
struct Ring {
    buf: Vec<(u64, u64, bool)>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl Ring {
    fn with_capacity(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, entry: (u64, u64, bool)) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Entries oldest to newest.
    fn iter(&self) -> impl Iterator<Item = &(u64, u64, bool)> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Per-search observability collector: phase timers, search-event
/// counters and the bounded schedule-length trajectory.
///
/// Search drivers thread one of these through a run (see
/// `Fast::schedule_traced`); with the `capture` feature off every
/// method is an inlined no-op on a zero-sized type.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    /// Probes actually evaluated by the driver (same-processor picks
    /// are skipped before probing and counted in `steps_skipped`).
    pub probes_attempted: u64,
    /// Probes whose move was committed.
    pub probes_accepted: u64,
    /// Probes whose move was rolled back.
    pub probes_reverted: u64,
    /// Driver steps that never probed (random pick landed on the
    /// node's current processor).
    pub steps_skipped: u64,
    /// Evaluation-engine counters absorbed via [`Self::absorb_eval`].
    pub eval: EvalStats,
    meta: Vec<(String, String)>,
    phases: Vec<(&'static str, Duration)>,
    active_phases: Vec<(&'static str, Instant)>,
    trajectory: Ring,
    /// Placement-provenance stream: `Candidate`/`Placed` events from
    /// the initial-schedule loop and `Transfer` events from the local
    /// search, in recording order. Bounded by the driver (O(v + e)
    /// candidates plus one transfer per probe), capture builds only.
    provenance: Vec<TraceEvent>,
}

impl SearchTrace {
    /// A collector with the default trajectory bound
    /// ([`DEFAULT_TRAJECTORY_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRAJECTORY_CAPACITY)
    }

    /// A collector whose trajectory ring holds at most `cap` steps
    /// (older steps are overwritten; the overflow count is emitted as
    /// the `trajectory_dropped` counter).
    pub fn with_capacity(cap: usize) -> Self {
        SearchTrace {
            probes_attempted: 0,
            probes_accepted: 0,
            probes_reverted: 0,
            steps_skipped: 0,
            eval: EvalStats::default(),
            meta: Vec::new(),
            phases: Vec::new(),
            active_phases: Vec::new(),
            trajectory: Ring::with_capacity(cap),
            provenance: Vec::new(),
        }
    }

    /// `true` when the `capture` feature is compiled in (this type
    /// actually records).
    pub fn is_enabled(&self) -> bool {
        true
    }
}

/// Same as [`SearchTrace::new`]: the default trajectory bound applies
/// (a zero-capacity ring would silently drop every step).
impl Default for SearchTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchTrace {
    /// Run `f` under the named phase timer, accumulating its
    /// monotonic wall time (repeat phases sum). For phases whose body
    /// must also record into the trace, use the
    /// [`Self::phase_start`]/[`Self::phase_end`] pair instead.
    pub fn phase<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        self.phase_start(name);
        let out = f();
        self.phase_end(name);
        out
    }

    /// Start the named phase timer (phases may nest; each start must
    /// be matched by a [`Self::phase_end`] with the same name).
    pub fn phase_start(&mut self, name: &'static str) {
        self.active_phases.push((name, Instant::now()));
    }

    /// Stop the named phase timer and accumulate its elapsed time
    /// (repeat phases sum). An end without a matching start is
    /// ignored.
    pub fn phase_end(&mut self, name: &'static str) {
        let Some(idx) = self.active_phases.iter().rposition(|(n, _)| *n == name) else {
            return;
        };
        let (_, t0) = self.active_phases.remove(idx);
        let dt = t0.elapsed();
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += dt,
            None => self.phases.push((name, dt)),
        }
    }

    /// Attach a `key = value` metadata pair (workload label, seed, …).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Count a probe evaluation.
    #[inline]
    pub fn probe_attempted(&mut self) {
        self.probes_attempted += 1;
    }

    /// Count an accepted probe and record the trajectory step
    /// (`makespan` is the best-known schedule length after the step).
    #[inline]
    pub fn probe_accepted(&mut self, step: u64, makespan: u64) {
        self.probes_accepted += 1;
        self.trajectory.push((step, makespan, true));
    }

    /// Count a reverted probe and record the trajectory step.
    #[inline]
    pub fn probe_reverted(&mut self, step: u64, makespan: u64) {
        self.probes_reverted += 1;
        self.trajectory.push((step, makespan, false));
    }

    /// Count a driver step that skipped probing.
    #[inline]
    pub fn step_skipped(&mut self) {
        self.steps_skipped += 1;
    }

    /// Record one candidate processor probed while placing `node`:
    /// the processor's ready time, the node's data-arrival time there
    /// and the start time the candidate offers.
    #[inline]
    pub fn candidate_probed(&mut self, node: u32, proc: u32, ready: u64, dat: u64, start: u64) {
        self.provenance.push(TraceEvent::Candidate {
            node: node as u64,
            proc: proc as u64,
            ready,
            dat,
            start,
        });
    }

    /// Record the decision that closed `node`'s candidate probes:
    /// which processor won, the start time it got, and why it won.
    #[inline]
    pub fn node_placed(&mut self, node: u32, proc: u32, start: u64, reason: &'static str) {
        self.provenance.push(TraceEvent::Placed {
            node: node as u64,
            proc: proc as u64,
            start,
            reason: reason.to_string(),
        });
    }

    /// Record one local-search transfer probe with its end points
    /// (companion to [`Self::probe_accepted`]/[`Self::probe_reverted`],
    /// which carry only the makespan).
    #[inline]
    pub fn node_transferred(
        &mut self,
        step: u64,
        node: u32,
        from: u32,
        to: u32,
        makespan: u64,
        accepted: bool,
    ) {
        self.provenance.push(TraceEvent::Transfer {
            step,
            node: node as u64,
            from: from as u64,
            to: to as u64,
            makespan,
            accepted,
        });
    }

    /// Fold an evaluation engine's counters into this trace (drivers
    /// call this once, after the search loop).
    pub fn absorb_eval(&mut self, stats: &EvalStats) {
        self.eval.merge(stats);
    }

    /// Fold another chain's trace into this one: counters and phase
    /// times sum, metadata and trajectory entries append in order.
    /// Merging chains in a fixed order (chain 0, 1, …) after joining
    /// keeps multi-threaded totals deterministic.
    pub fn merge(&mut self, other: &SearchTrace) {
        self.probes_attempted += other.probes_attempted;
        self.probes_accepted += other.probes_accepted;
        self.probes_reverted += other.probes_reverted;
        self.steps_skipped += other.steps_skipped;
        self.eval.merge(&other.eval);
        for (k, v) in &other.meta {
            self.meta.push((k.clone(), v.clone()));
        }
        for (name, dt) in &other.phases {
            match self.phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += *dt,
                None => self.phases.push((name, *dt)),
            }
        }
        for &entry in other.trajectory.iter() {
            self.trajectory.push(entry);
        }
        self.trajectory.dropped += other.trajectory.dropped;
        self.provenance.extend(other.provenance.iter().cloned());
    }

    /// Steps dropped from the bounded trajectory ring so far.
    pub fn trajectory_dropped(&self) -> u64 {
        self.trajectory.dropped
    }

    /// Flatten into the event stream: metadata, phases, counters,
    /// then trajectory steps oldest to newest.
    pub fn to_events(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for (k, v) in &self.meta {
            events.push(TraceEvent::meta(k.clone(), v.clone()));
        }
        for (name, dt) in &self.phases {
            events.push(TraceEvent::Phase {
                name: (*name).to_string(),
                micros: dt.as_micros() as u64,
            });
        }
        for (name, value) in [
            ("probes_attempted", self.probes_attempted),
            ("probes_accepted", self.probes_accepted),
            ("probes_reverted", self.probes_reverted),
            ("steps_skipped", self.steps_skipped),
        ] {
            events.push(TraceEvent::Counter {
                name: name.to_string(),
                value,
            });
        }
        for (name, value) in self.eval.counters() {
            events.push(TraceEvent::Counter {
                name: name.to_string(),
                value,
            });
        }
        if self.trajectory.dropped > 0 {
            events.push(TraceEvent::Counter {
                name: "trajectory_dropped".to_string(),
                value: self.trajectory.dropped,
            });
        }
        events.extend(self.provenance.iter().cloned());
        for &(step, makespan, accepted) in self.trajectory.iter() {
            events.push(TraceEvent::Step {
                step,
                makespan,
                accepted,
            });
        }
        events
    }

    /// [`Self::to_events`] wrapped as a [`Report`].
    pub fn to_report(&self) -> Report {
        Report::new(self.to_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_trajectory_flow_into_the_report() {
        let mut t = SearchTrace::new();
        t.set_meta("algo", "FAST");
        t.phase("local_search", || {});
        t.probe_attempted();
        t.probe_accepted(0, 18);
        t.probe_attempted();
        t.probe_reverted(1, 18);
        t.step_skipped();
        let mut stats = EvalStats::default();
        stats.on_probe();
        stats.on_probe();
        stats.on_node_walked();
        t.absorb_eval(&stats);

        let r = t.to_report();
        assert_eq!(r.counter("probes_attempted"), Some(2));
        assert_eq!(r.counter("probes_accepted"), Some(1));
        assert_eq!(r.counter("probes_reverted"), Some(1));
        assert_eq!(r.counter("steps_skipped"), Some(1));
        assert_eq!(r.counter("incremental_probes"), Some(2));
        assert_eq!(r.counter("dirty_nodes_visited"), Some(1));
        assert_eq!(r.trajectory(), vec![18, 18]);
        assert_eq!(r.phase_totals().len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = SearchTrace::with_capacity(3);
        for step in 0..5u64 {
            t.probe_accepted(step, 100 - step);
        }
        assert_eq!(t.trajectory_dropped(), 2);
        let r = t.to_report();
        assert_eq!(r.trajectory(), vec![98, 97, 96]);
        assert_eq!(r.counter("trajectory_dropped"), Some(2));
    }

    #[test]
    fn merge_sums_counters_and_appends_trajectories() {
        let mut a = SearchTrace::new();
        a.probe_attempted();
        a.probe_accepted(0, 10);
        a.phase("local_search", || {});
        let mut b = SearchTrace::new();
        b.probe_attempted();
        b.probe_reverted(0, 12);
        b.phase("local_search", || {});
        b.set_meta("chain", "1");
        a.merge(&b);
        assert_eq!(a.probes_attempted, 2);
        assert_eq!(a.probes_accepted, 1);
        assert_eq!(a.probes_reverted, 1);
        assert_eq!(a.to_report().trajectory(), vec![10, 12]);
        assert_eq!(a.to_report().phase_totals().len(), 1);
    }

    #[test]
    fn provenance_flows_into_the_report_in_order() {
        let mut t = SearchTrace::new();
        t.candidate_probed(3, 0, 5, 9, 9);
        t.candidate_probed(3, 1, 0, 12, 12);
        t.node_placed(3, 0, 9, "earliest-start");
        t.node_transferred(0, 3, 0, 2, 17, true);
        let r = t.to_report();
        let placements = r.placements_of(3);
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].proc, 0);
        assert_eq!(placements[0].reason, "earliest-start");
        assert_eq!(placements[0].candidates.len(), 2);
        assert_eq!(placements[0].candidates[1].dat, 12);
        let transfers = r.transfers_of(3);
        assert_eq!(transfers.len(), 1);
        assert!(transfers[0].accepted);
        // Round-trips through NDJSON like every other event.
        let back = crate::Report::from_ndjson(&r.to_ndjson()).unwrap();
        assert_eq!(back.placements_of(3).len(), 1);
    }

    #[test]
    fn merge_appends_provenance() {
        let mut a = SearchTrace::new();
        a.node_placed(0, 0, 0, "only-candidate");
        let mut b = SearchTrace::new();
        b.node_placed(1, 1, 4, "earliest-start");
        a.merge(&b);
        let r = a.to_report();
        assert_eq!(r.placements_of(0).len(), 1);
        assert_eq!(r.placements_of(1).len(), 1);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut t = SearchTrace::with_capacity(0);
        t.probe_accepted(0, 1);
        assert_eq!(t.trajectory_dropped(), 1);
        assert!(t.to_report().trajectory().is_empty());
    }
}
