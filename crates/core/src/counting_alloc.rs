//! A dependency-free counting allocator for zero-allocation tests.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! `alloc` / `alloc_zeroed` / `realloc` call with a relaxed atomic.
//! Install it as the `#[global_allocator]` *inside a test binary* (the
//! library never installs it) and assert that a code region performs
//! zero allocations:
//!
//! ```ignore
//! use fastsched::counting_alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! The counter is monotonic (never reset by deallocation), so the
//! difference of two snapshots is exactly the number of heap
//! acquisitions in between. `dealloc` is deliberately not counted:
//! releasing warm capacity is impossible in a correctly written
//! steady state anyway, and counting it would double-charge
//! `realloc`-based growth.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the system allocator. See the
/// [module docs](self).
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    /// A new counter at zero (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total heap acquisitions (`alloc` + `alloc_zeroed` + `realloc`)
    /// since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates directly to `System`; the counter side effect
// never touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
