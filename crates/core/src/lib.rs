//! # fastsched
//!
//! A production-quality reproduction of **FAST: A Low-Complexity
//! Algorithm for Efficient Scheduling of DAGs on Parallel Processors**
//! (Yu-Kwong Kwok, Ishfaq Ahmad, Jun Gu — ICPP 1996), including every
//! substrate the paper's evaluation depends on:
//!
//! * the weighted task-graph model with the §2 attribute machinery
//!   ([`dag`]);
//! * the FAST algorithm itself plus the paper's four baselines — DSC,
//!   MD, ETF, DLS — and family extensions ([`algorithms`]);
//! * schedule representation, validation and metrics ([`schedule`]);
//! * the real-workload generators (Gaussian elimination, Laplace
//!   solver, FFT) and the §5.2 random-DAG generator, with task counts
//!   matching the paper's tables exactly ([`workloads`]);
//! * a discrete-event Paragon-substitute simulator ([`sim`]);
//! * the CASCH-substitute pipeline and CLI ([`casch`]);
//! * lock-free service metrics — counters, gauges, mergeable
//!   log-linear latency histograms, and a Prometheus text-exposition
//!   writer backing `casch serve --metrics-addr` ([`metrics`]);
//! * an observability layer — phase timers, search counters and
//!   schedule-length trajectories ([`trace`]); compile with the
//!   `trace` cargo feature to actually record (off by default, where
//!   every hook is a zero-sized no-op).
//!
//! ## Quickstart
//!
//! ```
//! use fastsched::prelude::*;
//!
//! // Generate the paper's Gaussian-elimination workload for N = 8.
//! let db = TimingDatabase::paragon();
//! let dag = gaussian_elimination_dag(8, &db);
//!
//! // Schedule with FAST on 16 processors and check it's legal.
//! let schedule = Fast::new().schedule(&dag, 16);
//! assert!(validate(&dag, &schedule).is_ok());
//!
//! // Run it on the simulated Paragon.
//! let report = simulate(&dag, &schedule, &SimConfig::default());
//! assert!(report.execution_time >= schedule.makespan());
//! ```

#![warn(missing_docs)]

pub mod counting_alloc;

pub use fastsched_algorithms as algorithms;
pub use fastsched_casch as casch;
pub use fastsched_dag as dag;
pub use fastsched_metrics as metrics;
pub use fastsched_schedule as schedule;
pub use fastsched_sim as sim;
pub use fastsched_trace as trace;
pub use fastsched_workloads as workloads;

/// One-stop imports for applications using the library.
pub mod prelude {
    pub use fastsched_algorithms::{
        all_schedulers, paper_schedulers, schedule_many, schedule_many_into, schedule_many_par,
        schedule_many_par_timed, Dls, Dsc, Etf, Fast, FastConfig, FastParallel, Heft, Hlfet, Mcp,
        Md, Scheduler, Workspace,
    };
    pub use fastsched_casch::{compare_algorithms, run_on_dag, run_pipeline, Application};
    pub use fastsched_dag::{
        classify_nodes, cpn_dominate_list, Cost, Dag, DagBuilder, GraphAttributes, NodeClass,
        NodeId,
    };
    pub use fastsched_schedule::{validate, ProcId, Schedule, ScheduleMetrics};
    pub use fastsched_sim::{simulate, ExecutionReport, SimConfig};
    pub use fastsched_trace::{Report, SearchTrace};
    pub use fastsched_workloads::{
        fft_dag, gaussian_elimination_dag, laplace_dag, random_layered_dag, RandomDagConfig,
        TimingDatabase,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let db = TimingDatabase::paragon();
        let dag = fft_dag(16, &db);
        let schedule = Fast::new().schedule(&dag, 8);
        validate(&dag, &schedule).unwrap();
        let report = simulate(&dag, &schedule, &SimConfig::ideal());
        assert_eq!(report.execution_time, schedule.makespan());
    }
}
