//! Message timing and link contention.
//!
//! A DAG edge's weight `c` is the message's *nominal* transfer time —
//! what the abstract schedule model charges. On the simulated machine
//! a remote message additionally pays:
//!
//! * **distance**: `hops × hop_latency_us` router traversals;
//! * **contention**: under [`ContentionModel::Links`], the message
//!   holds every link on its XY route for `max(1, c / pipelining)`
//!   time units; if any link is busy the message waits until the whole
//!   path is free. This approximates the Paragon's wormhole routing,
//!   where a blocked worm stalls in place holding its path, but where
//!   link occupancy is only a small fraction of the software-dominated
//!   nominal message cost `c`.

use crate::cost::TopologyCostModel;
use crate::report::LinkHold;
use crate::topology::{LinkId, Topology};
use fastsched_dag::Cost;
use fastsched_schedule::{CostModel, ProcId};
use std::collections::HashMap;

/// How link conflicts are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionModel {
    /// Links are never contended (infinite bandwidth routers).
    None,
    /// Each directed mesh link serves one message at a time; a message
    /// holds its route for `max(1, c / pipelining)` time units.
    /// `pipelining` models wormhole flit pipelining: only a fraction
    /// of the nominal transfer time is spent occupying any one link
    /// (the Paragon's links ran much faster than its software
    /// per-message overhead, which dominates the nominal cost `c`).
    Links {
        /// Divisor applied to the nominal cost to get the link hold
        /// time. 1 = circuit switching (most pessimistic).
        pipelining: Cost,
    },
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::Links { pipelining: 8 }
    }
}

/// Mutable network state: per-link busy-until times.
#[derive(Debug)]
pub struct Network {
    cost: TopologyCostModel,
    model: ContentionModel,
    busy_until: HashMap<LinkId, Cost>,
    record_holds: bool,
    /// Total time messages spent waiting for busy links.
    pub contention_delay: Cost,
    /// Remote messages delivered.
    pub messages: u64,
    /// Per-link occupancy intervals; only populated after
    /// [`Network::record_holds`] and only under
    /// [`ContentionModel::Links`].
    pub holds: Vec<LinkHold>,
}

impl Network {
    /// Fresh network over `topology` with the given per-hop router
    /// latency.
    pub fn new(topology: Topology, hop_latency_us: Cost, model: ContentionModel) -> Self {
        Self {
            cost: TopologyCostModel::new(topology, hop_latency_us),
            model,
            busy_until: HashMap::new(),
            record_holds: false,
            contention_delay: 0,
            messages: 0,
            holds: Vec::new(),
        }
    }

    /// Keep a [`LinkHold`] record of every link occupancy interval
    /// (costs O(hops) memory per message — off by default).
    pub fn record_holds(&mut self, on: bool) {
        self.record_holds = on;
    }

    /// The interconnect.
    pub fn topology(&self) -> Topology {
        self.cost.topology()
    }

    /// The distance-aware message pricing this network charges — the
    /// same [`TopologyCostModel`] can drive the schedule evaluators.
    pub fn cost_model(&self) -> TopologyCostModel {
        self.cost
    }

    /// Deliver a message of nominal cost `c` from `src` to `dst`,
    /// entering the network at `send_time`. Returns the arrival time
    /// at `dst`. Local messages (same processor) arrive instantly.
    pub fn deliver(&mut self, src: ProcId, dst: ProcId, c: Cost, send_time: Cost) -> Cost {
        if src == dst {
            return send_time;
        }
        self.messages += 1;
        // Distance pricing (nominal + hops × hop latency) comes from
        // the shared cost model; contention is layered on top.
        let latency = self.cost.message_cost(c, src, dst);

        match self.model {
            ContentionModel::None => send_time + latency,
            ContentionModel::Links { pipelining } => {
                let route = self.cost.topology().route(src, dst);
                let hold = (c / pipelining.max(1)).max(1);
                // Wait until the whole path is free.
                let mut start = send_time;
                for link in &route {
                    if let Some(&b) = self.busy_until.get(link) {
                        start = start.max(b);
                    }
                }
                self.contention_delay += start - send_time;
                let release = start + hold;
                for link in route {
                    self.busy_until.insert(link, release);
                    if self.record_holds {
                        self.holds.push(LinkHold {
                            from: link.from,
                            to: link.to,
                            start,
                            release,
                            wait: start - send_time,
                        });
                    }
                }
                start + latency
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh3() -> Topology {
        Topology::Mesh2D {
            width: 3,
            height: 3,
        }
    }

    #[test]
    fn local_messages_are_free() {
        let mut n = Network::new(mesh3(), 5, ContentionModel::Links { pipelining: 1 });
        assert_eq!(n.deliver(ProcId(4), ProcId(4), 100, 7), 7);
        assert_eq!(n.messages, 0);
    }

    #[test]
    fn remote_message_pays_hop_latency() {
        let mut n = Network::new(mesh3(), 5, ContentionModel::None);
        // 0 → 8: 4 hops. arrival = 10 + 100 + 4*5.
        assert_eq!(n.deliver(ProcId(0), ProcId(8), 100, 10), 130);
        assert_eq!(n.messages, 1);
    }

    #[test]
    fn contention_serializes_shared_links() {
        let mut n = Network::new(mesh3(), 0, ContentionModel::Links { pipelining: 1 });
        // Two messages over the same first link 0→1 at the same time.
        let a = n.deliver(ProcId(0), ProcId(1), 50, 0);
        let b = n.deliver(ProcId(0), ProcId(2), 50, 0);
        assert_eq!(a, 50);
        // Second message waits for the 0→1 link: starts at 50.
        assert_eq!(b, 100);
        assert_eq!(n.contention_delay, 50);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut n = Network::new(mesh3(), 0, ContentionModel::Links { pipelining: 1 });
        let a = n.deliver(ProcId(0), ProcId(1), 50, 0);
        let b = n.deliver(ProcId(3), ProcId(4), 50, 0);
        assert_eq!(a, 50);
        assert_eq!(b, 50);
        assert_eq!(n.contention_delay, 0);
    }

    #[test]
    fn no_contention_model_ignores_link_state() {
        let mut n = Network::new(mesh3(), 0, ContentionModel::None);
        let a = n.deliver(ProcId(0), ProcId(1), 50, 0);
        let b = n.deliver(ProcId(0), ProcId(1), 50, 0);
        assert_eq!(a, b);
        assert_eq!(n.contention_delay, 0);
    }

    #[test]
    fn holds_record_each_link_on_the_route() {
        let mut n = Network::new(mesh3(), 0, ContentionModel::Links { pipelining: 1 });
        n.record_holds(true);
        // 0 → 2 crosses links 0→1 and 1→2.
        n.deliver(ProcId(0), ProcId(2), 50, 0);
        assert_eq!(n.holds.len(), 2);
        assert!(n.holds.iter().all(|h| h.start == 0 && h.release == 50));
        // A second message over 0→1 waits and records the wait.
        n.deliver(ProcId(0), ProcId(1), 50, 10);
        assert_eq!(n.holds.len(), 3);
        let h = n.holds.last().unwrap();
        assert_eq!((h.from, h.to), (0, 1));
        assert_eq!((h.start, h.release, h.wait), (50, 100, 40));
        // Off by default.
        let mut quiet = Network::new(mesh3(), 0, ContentionModel::Links { pipelining: 1 });
        quiet.deliver(ProcId(0), ProcId(2), 50, 0);
        assert!(quiet.holds.is_empty());
    }

    #[test]
    fn fully_connected_never_contends() {
        let mut n = Network::new(
            Topology::FullyConnected,
            5,
            ContentionModel::Links { pipelining: 1 },
        );
        let a = n.deliver(ProcId(0), ProcId(1), 50, 0);
        let b = n.deliver(ProcId(0), ProcId(1), 50, 0);
        // 1 hop each, no shared state.
        assert_eq!(a, 55);
        assert_eq!(b, 55);
    }
}
