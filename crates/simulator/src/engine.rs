//! The discrete-event execution engine.
//!
//! The engine takes a DAG and a complete static schedule and *runs*
//! them: the schedule contributes only the processor assignment and
//! the per-processor task order; every start time is re-derived from
//! simulated message arrivals. This mirrors what CASCH's generated
//! code does on the real machine — receive all inputs, compute, send
//! all outputs — and lets network effects (hop latency, contention)
//! feed back into the measured execution time.
//!
//! Deadlock-freedom: a task waits only for (a) tasks earlier on its
//! own processor and (b) its DAG parents, both of which precede it in
//! the valid static schedule's global start-time order, so the waits
//! form a DAG and the event loop always drains.

use crate::network::{ContentionModel, Network};
use crate::report::ExecutionReport;
use crate::topology::Topology;
use fastsched_dag::{Cost, Dag, NodeId};
use fastsched_schedule::{ProcId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Interconnect; `None` selects the smallest square 2D mesh that
    /// fits the schedule's processors (the Paragon default).
    pub topology: Option<Topology>,
    /// Router latency per hop, microseconds.
    pub hop_latency_us: Cost,
    /// Link contention model.
    pub contention: ContentionModel,
    /// LogP-style *sender* overhead `o_s`: CPU time a processor spends
    /// injecting each remote message. Sending k remote messages keeps
    /// the processor busy for `k · o_s` after the task finishes, and
    /// the i-th message enters the network `i · o_s` late. Zero by
    /// default (the abstract model folds software cost into the edge
    /// weight).
    pub send_overhead_us: Cost,
    /// LogP-style *receiver* overhead `o_r`: added to every remote
    /// message's arrival time (modelled off the receiving CPU's
    /// critical path, as on NIC-offloaded machines).
    pub recv_overhead_us: Cost,
    /// Record a full event log in the report (off by default: traces
    /// are O(v + e) memory).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            topology: None,
            hop_latency_us: 2,
            contention: ContentionModel::default(),
            send_overhead_us: 0,
            recv_overhead_us: 0,
            trace: false,
        }
    }
}

impl SimConfig {
    /// The idealized network: fully connected, zero hop latency, no
    /// contention, no software overheads. Execution time then equals
    /// the schedule's predicted makespan exactly (a property the tests
    /// pin down).
    pub fn ideal() -> Self {
        Self {
            topology: Some(Topology::FullyConnected),
            hop_latency_us: 0,
            contention: ContentionModel::None,
            send_overhead_us: 0,
            recv_overhead_us: 0,
            trace: false,
        }
    }
}

/// Execute `schedule` (a complete, valid schedule of `dag`) on the
/// simulated machine.
///
/// Panics if the schedule is incomplete; run
/// [`fastsched_schedule::validate()`](fn@fastsched_schedule::validate) first for precise diagnostics.
pub fn simulate(dag: &Dag, schedule: &Schedule, config: &SimConfig) -> ExecutionReport {
    let v = dag.node_count();
    let lanes = schedule.timelines();
    let topology = config
        .topology
        .unwrap_or_else(|| Topology::mesh_for(schedule.processors_used()));
    assert!(
        topology.capacity() >= lanes.len() as u32,
        "topology too small for the schedule"
    );
    let mut network = Network::new(topology, config.hop_latency_us, config.contention);
    network.record_holds(config.trace);

    // Per-lane progress and per-node readiness.
    let mut lane_pos = vec![0usize; lanes.len()];
    let mut deps: Vec<u32> = dag.nodes().map(|n| dag.in_degree(n) as u32).collect();
    let mut data_ready = vec![0 as Cost; v];
    let mut proc_free = vec![0 as Cost; lanes.len()];
    let mut finish_times = vec![0 as Cost; v];
    let mut started = vec![false; v];

    // Completion events: (finish time, sequence, node, proc).
    let mut events: BinaryHeap<Reverse<(Cost, u64, u32, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;

    let try_start = |p: usize,
                     lane_pos: &mut [usize],
                     deps: &[u32],
                     data_ready: &[Cost],
                     proc_free: &[Cost],
                     started: &mut [bool],
                     events: &mut BinaryHeap<Reverse<(Cost, u64, u32, u32)>>,
                     seq: &mut u64| {
        if let Some(&t) = lanes[p].get(lane_pos[p]) {
            let n = t.node;
            if !started[n.index()] && deps[n.index()] == 0 {
                let start = data_ready[n.index()].max(proc_free[p]);
                started[n.index()] = true;
                *seq += 1;
                events.push(Reverse((start + dag.weight(n), *seq, n.0, p as u32)));
            }
        }
    };

    for p in 0..lanes.len() {
        try_start(
            p,
            &mut lane_pos,
            &deps,
            &data_ready,
            &proc_free,
            &mut started,
            &mut events,
            &mut seq,
        );
    }

    let mut completed = 0usize;
    let mut makespan = 0;
    let mut trace: Vec<crate::report::TraceEvent> = Vec::new();
    while let Some(Reverse((t, _, id, p))) = events.pop() {
        let n = NodeId(id);
        let p = p as usize;
        if config.trace {
            trace.push(crate::report::TraceEvent::TaskStart {
                node: n.0,
                proc: p as u32,
                time: t - dag.weight(n),
            });
            trace.push(crate::report::TraceEvent::TaskFinish {
                node: n.0,
                proc: p as u32,
                time: t,
            });
        }
        finish_times[n.index()] = t;
        makespan = makespan.max(t);
        proc_free[p] = t;
        lane_pos[p] += 1;
        completed += 1;

        // Send outputs: local data is available at finish; remote data
        // rides the network, each injection delayed (and the sending
        // CPU held) by the per-message sender overhead. The CPU hold
        // is applied before any start attempt so a local successor
        // cannot slip into the injection window.
        let remote_children = dag
            .succs(n)
            .iter()
            .filter(|e| schedule.proc_of(e.node).expect("complete schedule").index() != p)
            .count() as Cost;
        proc_free[p] = proc_free[p].max(t + remote_children * config.send_overhead_us);

        let mut injections = 0 as Cost;
        for e in dag.succs(n) {
            let child = e.node;
            let cp = schedule.proc_of(child).expect("complete schedule").index();
            let arrival = if cp == p {
                t
            } else {
                injections += 1;
                let send_time = t + injections * config.send_overhead_us;
                let arrived =
                    network.deliver(ProcId(p as u32), ProcId(cp as u32), e.cost, send_time)
                        + config.recv_overhead_us;
                if config.trace {
                    trace.push(crate::report::TraceEvent::Message {
                        from_node: n.0,
                        to_node: child.0,
                        from_proc: p as u32,
                        to_proc: cp as u32,
                        sent: send_time,
                        arrived,
                    });
                }
                arrived
            };
            data_ready[child.index()] = data_ready[child.index()].max(arrival);
            deps[child.index()] -= 1;
            if deps[child.index()] == 0 {
                try_start(
                    cp,
                    &mut lane_pos,
                    &deps,
                    &data_ready,
                    &proc_free,
                    &mut started,
                    &mut events,
                    &mut seq,
                );
            }
        }

        // This processor is free: start its next task if ready.
        try_start(
            p,
            &mut lane_pos,
            &deps,
            &data_ready,
            &proc_free,
            &mut started,
            &mut events,
            &mut seq,
        );
    }
    assert_eq!(completed, v, "schedule must cover every task");

    ExecutionReport {
        execution_time: makespan,
        predicted_makespan: schedule.makespan(),
        processors_used: schedule.processors_used(),
        messages: network.messages,
        contention_delay: network.contention_delay,
        busy_time: dag.total_computation(),
        finish_times,
        trace,
        link_holds: network.holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsched_dag::examples::{fork_join, paper_figure1};
    use fastsched_schedule::evaluate::evaluate_fixed_order;
    use fastsched_schedule::validate;

    /// A schedule built by the fixed-order evaluator on any topo order.
    fn simple_schedule(dag: &Dag, procs: u32) -> Schedule {
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let assignment: Vec<ProcId> = dag.nodes().map(|n| ProcId(n.0 % procs)).collect();
        evaluate_fixed_order(dag, &order, &assignment, procs)
    }

    #[test]
    fn ideal_network_reproduces_predicted_makespan() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 3);
        assert_eq!(validate(&g, &s), Ok(()));
        let r = simulate(&g, &s, &SimConfig::ideal());
        assert_eq!(r.execution_time, s.makespan());
        assert_eq!(r.contention_delay, 0);
        assert!((r.slowdown_vs_prediction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_execution_is_never_faster_than_prediction() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 3);
        let r = simulate(&g, &s, &SimConfig::default());
        assert!(r.execution_time >= s.makespan());
    }

    #[test]
    fn hop_latency_slows_remote_messages() {
        let g = fork_join(4, 5, 10);
        let s = simple_schedule(&g, 4);
        let near = simulate(
            &g,
            &s,
            &SimConfig {
                topology: Some(Topology::FullyConnected),
                hop_latency_us: 0,
                contention: ContentionModel::None,
                ..SimConfig::default()
            },
        );
        let far = simulate(
            &g,
            &s,
            &SimConfig {
                topology: Some(Topology::Mesh2D {
                    width: 4,
                    height: 1,
                }),
                hop_latency_us: 50,
                contention: ContentionModel::None,
                ..SimConfig::default()
            },
        );
        assert!(far.execution_time > near.execution_time);
    }

    #[test]
    fn single_processor_schedule_has_no_messages() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 1);
        let r = simulate(&g, &s, &SimConfig::default());
        assert_eq!(r.messages, 0);
        assert_eq!(r.execution_time, g.total_computation());
        assert_eq!(r.processors_used, 1);
    }

    #[test]
    fn contention_adds_measurable_delay() {
        // A one-to-many fan-out from a single processor funnels every
        // message through the same outgoing links of a 1D mesh.
        let g = fork_join(6, 2, 30);
        let order: Vec<NodeId> = g.topo_order().to_vec();
        // Fork and join on P0, workers on P1 — all six fork→worker
        // messages traverse link 0→1.
        let assignment: Vec<ProcId> = g
            .nodes()
            .map(|n| {
                if g.name(n).starts_with("work") {
                    ProcId(1)
                } else {
                    ProcId(0)
                }
            })
            .collect();
        let s = evaluate_fixed_order(&g, &order, &assignment, 2);
        let contended = simulate(
            &g,
            &s,
            &SimConfig {
                topology: Some(Topology::Mesh2D {
                    width: 2,
                    height: 1,
                }),
                hop_latency_us: 0,
                contention: ContentionModel::Links { pipelining: 1 },
                ..SimConfig::default()
            },
        );
        assert!(contended.contention_delay > 0);
        let free = simulate(
            &g,
            &s,
            &SimConfig {
                topology: Some(Topology::Mesh2D {
                    width: 2,
                    height: 1,
                }),
                hop_latency_us: 0,
                contention: ContentionModel::None,
                ..SimConfig::default()
            },
        );
        assert!(contended.execution_time > free.execution_time);
    }

    #[test]
    fn finish_times_cover_every_task() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 3);
        let r = simulate(&g, &s, &SimConfig::default());
        assert_eq!(r.finish_times.len(), g.node_count());
        assert!(r.finish_times.iter().all(|&f| f > 0));
        assert_eq!(
            r.finish_times.iter().copied().max().unwrap(),
            r.execution_time
        );
    }

    #[test]
    fn sender_overhead_delays_messages_and_holds_the_cpu() {
        let g = fork_join(4, 5, 10);
        let s = simple_schedule(&g, 4);
        let base = simulate(&g, &s, &SimConfig::ideal());
        let with_overhead = simulate(
            &g,
            &s,
            &SimConfig {
                send_overhead_us: 20,
                ..SimConfig::ideal()
            },
        );
        assert!(with_overhead.execution_time > base.execution_time);
    }

    #[test]
    fn receiver_overhead_delays_arrivals() {
        let g = fork_join(4, 5, 10);
        let s = simple_schedule(&g, 4);
        let base = simulate(&g, &s, &SimConfig::ideal());
        let with_overhead = simulate(
            &g,
            &s,
            &SimConfig {
                recv_overhead_us: 15,
                ..SimConfig::ideal()
            },
        );
        assert!(with_overhead.execution_time >= base.execution_time + 15);
    }

    #[test]
    fn overheads_do_not_touch_single_processor_runs() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 1);
        let r = simulate(
            &g,
            &s,
            &SimConfig {
                send_overhead_us: 50,
                recv_overhead_us: 50,
                ..SimConfig::default()
            },
        );
        assert_eq!(r.execution_time, g.total_computation());
    }

    #[test]
    fn alternative_topologies_execute_correctly() {
        let g = fork_join(6, 4, 8);
        let s = simple_schedule(&g, 8);
        for topo in [
            Topology::Torus2D {
                width: 3,
                height: 3,
            },
            Topology::Hypercube { dim: 3 },
        ] {
            let r = simulate(
                &g,
                &s,
                &SimConfig {
                    topology: Some(topo),
                    ..SimConfig::default()
                },
            );
            assert!(r.execution_time >= s.makespan(), "{topo:?}");
            assert_eq!(r.finish_times.len(), g.node_count());
        }
    }

    #[test]
    fn richer_connectivity_is_never_slower_without_contention() {
        // Hypercube hops <= torus hops <= mesh hops for the same
        // processor count; with contention off, execution time orders
        // the same way.
        let g = fork_join(6, 4, 8);
        let s = simple_schedule(&g, 8);
        let run = |topo| {
            simulate(
                &g,
                &s,
                &SimConfig {
                    topology: Some(topo),
                    hop_latency_us: 25,
                    contention: ContentionModel::None,
                    ..SimConfig::default()
                },
            )
            .execution_time
        };
        let mesh = run(Topology::Mesh2D {
            width: 8,
            height: 1,
        });
        let torus = run(Topology::Torus2D {
            width: 8,
            height: 1,
        });
        let cube = run(Topology::Hypercube { dim: 3 });
        assert!(torus <= mesh);
        assert!(cube <= mesh);
    }

    #[test]
    fn trace_records_every_task_and_message() {
        let g = paper_figure1();
        let s = simple_schedule(&g, 3);
        let r = simulate(
            &g,
            &s,
            &SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        );
        use crate::report::TraceEvent;
        let starts = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TaskStart { .. }))
            .count();
        let finishes = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TaskFinish { .. }))
            .count();
        let messages = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Message { .. }))
            .count() as u64;
        assert_eq!(starts, g.node_count());
        assert_eq!(finishes, g.node_count());
        assert_eq!(messages, r.messages);
        // Off by default.
        let quiet = simulate(&g, &s, &SimConfig::default());
        assert!(quiet.trace.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fork_join(8, 3, 7);
        let s = simple_schedule(&g, 4);
        let a = simulate(&g, &s, &SimConfig::default());
        let b = simulate(&g, &s, &SimConfig::default());
        assert_eq!(a, b);
    }
}
