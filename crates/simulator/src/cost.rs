//! Topology-aware pricing of the abstract schedule model.
//!
//! [`TopologyCostModel`] implements the workspace-wide
//! [`CostModel`] trait over an interconnect [`Topology`]: compute
//! costs are the nominal task weights (the simulated machine is
//! homogeneous, like the Paragon), but a remote message pays its
//! nominal cost *plus* `hops × hop_latency_us` router traversals.
//! This is exactly the distance term the [`crate::network`] timing
//! charges — expressed as a cost model, so the same pricing can drive
//! the fixed-order evaluator or the incremental `DeltaEvaluator` when
//! a search wants to optimize for the simulated machine instead of
//! the abstract one.

use crate::topology::Topology;
use fastsched_dag::{Cost, Dag, NodeId};
use fastsched_schedule::{CostModel, ProcId};

/// A [`CostModel`] charging per-hop router latency on top of nominal
/// message costs, using a [`Topology`]'s hop distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyCostModel {
    topology: Topology,
    hop_latency_us: Cost,
}

impl TopologyCostModel {
    /// Model over `topology` with the given per-hop router latency.
    pub fn new(topology: Topology, hop_latency_us: Cost) -> Self {
        Self {
            topology,
            hop_latency_us,
        }
    }

    /// The interconnect.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Router latency per hop.
    pub fn hop_latency_us(&self) -> Cost {
        self.hop_latency_us
    }
}

impl CostModel for TopologyCostModel {
    #[inline]
    fn compute_cost(&self, dag: &Dag, node: NodeId, _proc: ProcId) -> Cost {
        dag.weight(node)
    }

    #[inline]
    fn message_cost(&self, nominal: Cost, src: ProcId, dst: ProcId) -> Cost {
        if src == dst {
            0
        } else {
            // Saturate: adversarial weights must cap at `Cost::MAX`,
            // not wrap into a cheap-looking message.
            let distance =
                (self.topology.hops(src, dst) as Cost).saturating_mul(self.hop_latency_us);
            nominal.saturating_add(distance)
        }
    }

    /// Hop counts depend on where processors sit in the interconnect —
    /// renumbering reroutes every message.
    #[inline]
    fn permits_renumbering(&self) -> bool {
        !matches!(self.topology, Topology::FullyConnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsched_dag::examples::chain;

    #[test]
    fn message_cost_charges_hop_latency() {
        let m = TopologyCostModel::new(
            Topology::Mesh2D {
                width: 3,
                height: 3,
            },
            5,
        );
        // 0 → 8: 4 hops under XY routing.
        assert_eq!(m.message_cost(100, ProcId(0), ProcId(8)), 120);
        assert_eq!(m.message_cost(100, ProcId(4), ProcId(4)), 0);
    }

    #[test]
    fn hierarchical_topology_prices_leader_hops() {
        let m = TopologyCostModel::new(Topology::Hierarchical { group_size: 4 }, 7);
        // Same group: one crossbar hop.
        assert_eq!(m.message_cost(100, ProcId(5), ProcId(7)), 107);
        // Cross group, non-leaders: climb + cross + descend = 3 hops.
        assert_eq!(m.message_cost(100, ProcId(5), ProcId(10)), 121);
        assert_eq!(m.message_cost(100, ProcId(6), ProcId(6)), 0);
    }

    #[test]
    fn message_cost_saturates_instead_of_wrapping() {
        let m = TopologyCostModel::new(
            Topology::Mesh2D {
                width: 3,
                height: 3,
            },
            Cost::MAX,
        );
        assert_eq!(
            m.message_cost(Cost::MAX - 1, ProcId(0), ProcId(8)),
            Cost::MAX
        );
    }

    #[test]
    fn compute_cost_is_the_nominal_weight() {
        let g = chain(2, 7, 3);
        let m = TopologyCostModel::new(Topology::FullyConnected, 5);
        assert_eq!(m.compute_cost(&g, NodeId(1), ProcId(6)), 7);
    }

    #[test]
    fn evaluator_prices_remote_edges_with_distance() {
        // The generic fixed-order evaluator, driven by the topology
        // model, reproduces the network's distance arithmetic.
        use fastsched_schedule::evaluate_fixed_order_with;
        let g = chain(2, 10, 100);
        let order: Vec<_> = g.topo_order().to_vec();
        let m = TopologyCostModel::new(
            Topology::Mesh2D {
                width: 3,
                height: 3,
            },
            5,
        );
        // Corner to corner: 4 hops → message costs 100 + 20.
        let s = evaluate_fixed_order_with(&m, &g, &order, &[ProcId(0), ProcId(8)], 9);
        assert_eq!(s.makespan(), 10 + 100 + 20 + 10);
    }
}
