//! # fastsched-sim
//!
//! A discrete-event message-passing multicomputer simulator — the
//! workspace's substitute for the paper's Intel Paragon testbed
//! (DESIGN.md §2).
//!
//! The paper does not score algorithms on Gantt-chart length alone: it
//! compiles the scheduled program with CASCH and *runs it* on the
//! Paragon, so effects the abstract schedule model ignores (message
//! hop distance, link contention from many-processor schedules) feed
//! back into the measured execution time. This crate reproduces that
//! feedback loop:
//!
//! * [`topology`] — processor interconnects: the Paragon's 2D mesh
//!   with XY routing, plus a fully-connected ideal network;
//! * [`cost`] — the [`TopologyCostModel`]: the simulator's distance
//!   pricing expressed as the workspace-wide `CostModel` trait, so
//!   the schedule evaluators can optimize against it directly;
//! * [`network`] — per-message timing (nominal cost + per-hop latency)
//!   and link contention (a message occupies every link on its route
//!   for its transfer duration);
//! * [`engine`] — the event-driven executor: tasks run on their
//!   assigned processor in schedule order, started as soon as their
//!   processor is free and all messages have arrived (the static
//!   schedule's *order* is kept, its absolute times are re-derived);
//! * [`report`] — the measured [`report::ExecutionReport`], plus
//!   run-vs-run comparison ([`report::ExecutionReport::diff`]);
//! * [`export`] — Chrome-trace-event (Perfetto) rendering of a traced
//!   execution, link-occupancy counters included.
//!
//! A schedule that hoards processors (DSC's O(v) clusters) sends more
//! and longer-range messages and loses execution time to contention —
//! the effect behind the paper's Figures 5(a)–7(a).

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod export;
pub mod network;
pub mod report;
pub mod topology;

pub use cost::TopologyCostModel;
pub use engine::{simulate, SimConfig};
pub use report::{ExecutionReport, LinkHold, ReportDiff};
pub use topology::Topology;
