//! The measured outcome of one simulated execution.

use fastsched_dag::Cost;
use serde::{Deserialize, Serialize};

/// One event of a simulated execution, recorded when
/// [`crate::SimConfig::trace`] is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A task began executing.
    TaskStart {
        /// Node id.
        node: u32,
        /// Processor id.
        proc: u32,
        /// Simulation time.
        time: Cost,
    },
    /// A task finished executing.
    TaskFinish {
        /// Node id.
        node: u32,
        /// Processor id.
        proc: u32,
        /// Simulation time.
        time: Cost,
    },
    /// A remote message was delivered.
    Message {
        /// Producing node.
        from_node: u32,
        /// Consuming node.
        to_node: u32,
        /// Sender processor.
        from_proc: u32,
        /// Receiver processor.
        to_proc: u32,
        /// Time the message entered the network.
        sent: Cost,
        /// Time the data became usable at the receiver.
        arrived: Cost,
    },
}

/// One occupancy interval of one directed mesh link, recorded when
/// [`crate::SimConfig::trace`] is enabled under link contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkHold {
    /// Source router of the link (flat processor index).
    pub from: u32,
    /// Destination router of the link (flat processor index).
    pub to: u32,
    /// Time the message began occupying the link.
    pub start: Cost,
    /// Time the link became free again.
    pub release: Cost,
    /// How long the message waited for this route to clear before
    /// `start` (0 when the path was already free).
    pub wait: Cost,
}

/// What running a scheduled program on the simulated machine measured
/// — the analogue of timing the CASCH-generated code on the Paragon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Wall-clock finish time of the last task (the paper's
    /// "application execution time").
    pub execution_time: Cost,
    /// The static schedule's predicted makespan, for comparison.
    pub predicted_makespan: Cost,
    /// Processors that executed at least one task.
    pub processors_used: u32,
    /// Remote messages delivered.
    pub messages: u64,
    /// Total time messages spent waiting on busy links.
    pub contention_delay: Cost,
    /// Sum of task execution times (machine-independent work).
    pub busy_time: Cost,
    /// Per-task finish times, indexed by node id.
    pub finish_times: Vec<Cost>,
    /// Event log (empty unless [`crate::SimConfig::trace`] is set).
    pub trace: Vec<TraceEvent>,
    /// Per-link occupancy intervals (empty unless
    /// [`crate::SimConfig::trace`] is set and the contention model
    /// tracks links).
    pub link_holds: Vec<LinkHold>,
}

impl ExecutionReport {
    /// `execution_time / predicted_makespan` — how much the network
    /// model inflated the abstract schedule (1.0 = perfect
    /// prediction).
    pub fn slowdown_vs_prediction(&self) -> f64 {
        if self.predicted_makespan == 0 {
            return 1.0;
        }
        self.execution_time as f64 / self.predicted_makespan as f64
    }

    /// Mean processor utilization during the run.
    pub fn utilization(&self) -> f64 {
        if self.execution_time == 0 || self.processors_used == 0 {
            return 0.0;
        }
        self.busy_time as f64 / (self.execution_time as f64 * self.processors_used as f64)
    }

    /// Compare this run against another of the same program. Fails
    /// when the task counts differ.
    pub fn diff(&self, other: &ExecutionReport) -> Result<ReportDiff, String> {
        if self.finish_times.len() != other.finish_times.len() {
            return Err(format!(
                "reports cover different task counts ({} vs {})",
                self.finish_times.len(),
                other.finish_times.len()
            ));
        }
        let mut changed: Vec<(u32, Cost, Cost)> = self
            .finish_times
            .iter()
            .zip(&other.finish_times)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(n, (&a, &b))| (n as u32, a, b))
            .collect();
        changed.sort_by_key(|&(n, a, b)| (a.min(b), n));
        Ok(ReportDiff {
            execution_time: (self.execution_time, other.execution_time),
            contention_delay: (self.contention_delay, other.contention_delay),
            messages: (self.messages, other.messages),
            changed,
        })
    }
}

/// The divergence between two [`ExecutionReport`]s of the same
/// program (see [`ExecutionReport::diff`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportDiff {
    /// Measured execution time of A / of B.
    pub execution_time: (Cost, Cost),
    /// Link-wait totals of A / of B.
    pub contention_delay: (Cost, Cost),
    /// Remote message counts of A / of B.
    pub messages: (u64, u64),
    /// Tasks whose finish times differ: `(node, finish_a, finish_b)`,
    /// ordered by the earlier of the two finishes — the head of this
    /// list is where the executions first drifted apart.
    pub changed: Vec<(u32, Cost, Cost)>,
}

impl ReportDiff {
    /// `true` when both runs measured identical per-task timing.
    pub fn is_identical(&self) -> bool {
        self.changed.is_empty() && self.execution_time.0 == self.execution_time.1
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "execution time:   A={} B={} ({:+})",
            self.execution_time.0,
            self.execution_time.1,
            self.execution_time.1 as i64 - self.execution_time.0 as i64
        )
        .unwrap();
        writeln!(
            out,
            "contention delay: A={} B={}",
            self.contention_delay.0, self.contention_delay.1
        )
        .unwrap();
        writeln!(
            out,
            "remote messages:  A={} B={}",
            self.messages.0, self.messages.1
        )
        .unwrap();
        if self.is_identical() {
            writeln!(out, "executions are identical").unwrap();
            return out;
        }
        writeln!(
            out,
            "divergence:       {} task(s) retimed",
            self.changed.len()
        )
        .unwrap();
        if let Some(&(n, a, b)) = self.changed.first() {
            writeln!(out, "first at t={}: node {n} finishes {a} vs {b}", a.min(b)).unwrap();
        }
        for &(n, a, b) in self.changed.iter().take(20) {
            writeln!(out, "  node {n:<6} finish {a}  ->  {b}").unwrap();
        }
        if self.changed.len() > 20 {
            writeln!(out, "  ... and {} more", self.changed.len() - 20).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            execution_time: 120,
            predicted_makespan: 100,
            processors_used: 4,
            messages: 7,
            contention_delay: 15,
            busy_time: 240,
            finish_times: vec![120],
            trace: Vec::new(),
            link_holds: Vec::new(),
        }
    }

    #[test]
    fn slowdown_ratio() {
        assert!((report().slowdown_vs_prediction() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_ratio() {
        assert!((report().utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diff_localizes_the_first_divergent_task() {
        let a = report();
        let mut b = report();
        b.finish_times = vec![110];
        b.execution_time = 110;
        let d = a.diff(&b).unwrap();
        assert!(!d.is_identical());
        assert_eq!(d.changed, vec![(0, 120, 110)]);
        assert_eq!(d.execution_time, (120, 110));
        let text = d.render();
        assert!(text.contains("first at t=110"), "{text}");
        assert!(a.diff(&a).unwrap().is_identical());
    }

    #[test]
    fn diff_rejects_mismatched_task_counts() {
        let a = report();
        let mut b = report();
        b.finish_times = vec![120, 60];
        assert!(a.diff(&b).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut r = report();
        r.predicted_makespan = 0;
        assert_eq!(r.slowdown_vs_prediction(), 1.0);
        r.execution_time = 0;
        assert_eq!(r.utilization(), 0.0);
    }
}
