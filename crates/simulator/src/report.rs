//! The measured outcome of one simulated execution.

use fastsched_dag::Cost;
use serde::{Deserialize, Serialize};

/// One event of a simulated execution, recorded when
/// [`crate::SimConfig::trace`] is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A task began executing.
    TaskStart {
        /// Node id.
        node: u32,
        /// Processor id.
        proc: u32,
        /// Simulation time.
        time: Cost,
    },
    /// A task finished executing.
    TaskFinish {
        /// Node id.
        node: u32,
        /// Processor id.
        proc: u32,
        /// Simulation time.
        time: Cost,
    },
    /// A remote message was delivered.
    Message {
        /// Producing node.
        from_node: u32,
        /// Consuming node.
        to_node: u32,
        /// Sender processor.
        from_proc: u32,
        /// Receiver processor.
        to_proc: u32,
        /// Time the message entered the network.
        sent: Cost,
        /// Time the data became usable at the receiver.
        arrived: Cost,
    },
}

/// What running a scheduled program on the simulated machine measured
/// — the analogue of timing the CASCH-generated code on the Paragon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Wall-clock finish time of the last task (the paper's
    /// "application execution time").
    pub execution_time: Cost,
    /// The static schedule's predicted makespan, for comparison.
    pub predicted_makespan: Cost,
    /// Processors that executed at least one task.
    pub processors_used: u32,
    /// Remote messages delivered.
    pub messages: u64,
    /// Total time messages spent waiting on busy links.
    pub contention_delay: Cost,
    /// Sum of task execution times (machine-independent work).
    pub busy_time: Cost,
    /// Per-task finish times, indexed by node id.
    pub finish_times: Vec<Cost>,
    /// Event log (empty unless [`crate::SimConfig::trace`] is set).
    pub trace: Vec<TraceEvent>,
}

impl ExecutionReport {
    /// `execution_time / predicted_makespan` — how much the network
    /// model inflated the abstract schedule (1.0 = perfect
    /// prediction).
    pub fn slowdown_vs_prediction(&self) -> f64 {
        if self.predicted_makespan == 0 {
            return 1.0;
        }
        self.execution_time as f64 / self.predicted_makespan as f64
    }

    /// Mean processor utilization during the run.
    pub fn utilization(&self) -> f64 {
        if self.execution_time == 0 || self.processors_used == 0 {
            return 0.0;
        }
        self.busy_time as f64 / (self.execution_time as f64 * self.processors_used as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            execution_time: 120,
            predicted_makespan: 100,
            processors_used: 4,
            messages: 7,
            contention_delay: 15,
            busy_time: 240,
            finish_times: vec![120],
            trace: Vec::new(),
        }
    }

    #[test]
    fn slowdown_ratio() {
        assert!((report().slowdown_vs_prediction() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_ratio() {
        assert!((report().utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let mut r = report();
        r.predicted_makespan = 0;
        assert_eq!(r.slowdown_vs_prediction(), 1.0);
        r.execution_time = 0;
        assert_eq!(r.utilization(), 0.0);
    }
}
