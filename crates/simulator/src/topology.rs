//! Processor interconnect topologies.
//!
//! The Intel Paragon was a 2D mesh of i860 nodes with deterministic XY
//! (dimension-ordered) routing; [`Topology::Mesh2D`] models it. The
//! fully-connected variant is the idealized network under which the
//! abstract schedule model (every message costs exactly its edge
//! weight) is accurate — useful as a control in experiments.

use fastsched_schedule::ProcId;

/// A directed link between two adjacent routers, identified by the
/// flat indices of its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Source router (flat processor index).
    pub from: u32,
    /// Destination router (flat processor index).
    pub to: u32,
}

/// Interconnect shape.
///
/// ```
/// use fastsched_sim::Topology;
/// use fastsched_schedule::ProcId;
///
/// let mesh = Topology::Mesh2D { width: 4, height: 4 };
/// assert_eq!(mesh.hops(ProcId(0), ProcId(15)), 6);
/// let cube = Topology::Hypercube { dim: 4 };
/// assert_eq!(cube.hops(ProcId(0), ProcId(15)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of processors is one hop apart and every message
    /// uses a private link (no contention possible).
    FullyConnected,
    /// `width × height` 2D mesh with XY routing (all X hops first,
    /// then all Y hops). Processor `p` sits at
    /// `(p % width, p / width)`. The Intel Paragon's shape.
    Mesh2D {
        /// Mesh width (columns).
        width: u32,
        /// Mesh height (rows).
        height: u32,
    },
    /// `width × height` 2D torus: a mesh with wraparound links; XY
    /// routing picks the shorter direction per axis.
    Torus2D {
        /// Torus width (columns).
        width: u32,
        /// Torus height (rows).
        height: u32,
    },
    /// `2^dim`-node hypercube with dimension-ordered (e-cube) routing,
    /// the Intel iPSC family's shape.
    Hypercube {
        /// Number of dimensions (processors = 2^dim).
        dim: u32,
    },
    /// Clusters of `group_size` processors joined by per-group leader
    /// routers: processor `p` belongs to group `p / group_size`, whose
    /// leader is the group's first processor. Peers in one group are a
    /// single hop apart (a crossbar); a cross-group message climbs to
    /// the source leader, crosses the leader interconnect, and
    /// descends to the destination — the NUMA / multi-socket shape the
    /// [`fastsched_schedule::Hierarchical`] cost model abstracts.
    Hierarchical {
        /// Processors per group (clamped to at least 1).
        group_size: u32,
    },
}

impl Topology {
    /// A square-ish mesh with capacity for at least `procs`
    /// processors: width = ceil(sqrt(procs)).
    pub fn mesh_for(procs: u32) -> Self {
        let procs = procs.max(1);
        let width = (procs as f64).sqrt().ceil() as u32;
        let height = procs.div_ceil(width);
        Topology::Mesh2D { width, height }
    }

    /// Number of processor slots in the topology (`u32::MAX` for the
    /// unbounded fully-connected and hierarchical shapes). Oversized
    /// grids saturate at `u32::MAX` instead of wrapping.
    pub fn capacity(&self) -> u32 {
        match *self {
            Topology::FullyConnected | Topology::Hierarchical { .. } => u32::MAX,
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                width.saturating_mul(height)
            }
            Topology::Hypercube { dim } => {
                if dim >= 32 {
                    u32::MAX
                } else {
                    1 << dim
                }
            }
        }
    }

    /// Panic (with the offending coordinates) if either endpoint is
    /// outside the topology — routing arithmetic on out-of-grid
    /// processors would otherwise silently address routers that do
    /// not exist.
    fn check(&self, a: ProcId, b: ProcId) {
        let cap = self.capacity();
        assert!(
            a.0 < cap && b.0 < cap,
            "topology {self:?} has {cap} processor slots; \
             cannot route {} -> {}",
            a.0,
            b.0
        );
    }

    /// Hop count between two processors under the topology's routing.
    ///
    /// # Panics
    ///
    /// Panics if either processor lies outside the topology's
    /// [`capacity`](Self::capacity) — callers (CLI, serve) are
    /// expected to reject such pairings at parse time.
    pub fn hops(&self, a: ProcId, b: ProcId) -> u32 {
        self.check(a, b);
        match *self {
            Topology::FullyConnected => u32::from(a != b),
            Topology::Hierarchical { group_size } => {
                let gs = group_size.max(1);
                if a == b {
                    return 0;
                }
                let (ga, gb) = (a.0 / gs, b.0 / gs);
                if ga == gb {
                    return 1;
                }
                let (la, lb) = (ga * gs, gb * gs);
                u32::from(a.0 != la) + 1 + u32::from(b.0 != lb)
            }
            Topology::Mesh2D { width, .. } => {
                let (ax, ay) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Torus2D { width, height } => {
                let (ax, ay) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let dx = ax.abs_diff(bx).min(width - ax.abs_diff(bx));
                let dy = ay.abs_diff(by).min(height - ay.abs_diff(by));
                dx + dy
            }
            Topology::Hypercube { .. } => (a.0 ^ b.0).count_ones(),
        }
    }

    /// The directed links an `a → b` message traverses (empty for
    /// `a == b` or the fully-connected ideal, whose links are private
    /// and never contended). Mesh and torus use XY routing; the
    /// hypercube uses dimension-ordered (e-cube) routing; the
    /// hierarchical shape routes through the group leaders.
    ///
    /// # Panics
    ///
    /// Panics if either processor lies outside the topology's
    /// [`capacity`](Self::capacity), like [`hops`](Self::hops).
    pub fn route(&self, a: ProcId, b: ProcId) -> Vec<LinkId> {
        self.check(a, b);
        match *self {
            Topology::FullyConnected => Vec::new(),
            Topology::Hierarchical { group_size } => {
                let gs = group_size.max(1);
                if a == b {
                    return Vec::new();
                }
                let (ga, gb) = (a.0 / gs, b.0 / gs);
                if ga == gb {
                    return vec![LinkId { from: a.0, to: b.0 }];
                }
                let (la, lb) = (ga * gs, gb * gs);
                // a → (own leader) → (peer leader) → b, skipping the
                // climb/descend legs when an endpoint *is* its leader,
                // so `route.len()` always equals `hops`.
                let mut stops = vec![a.0];
                if a.0 != la {
                    stops.push(la);
                }
                stops.push(lb);
                if b.0 != lb {
                    stops.push(b.0);
                }
                stops
                    .windows(2)
                    .map(|w| LinkId {
                        from: w[0],
                        to: w[1],
                    })
                    .collect()
            }
            Topology::Mesh2D { width, .. } => {
                let mut links = Vec::new();
                let (mut x, mut y) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let flat = |x: u32, y: u32| y * width + x;
                while x != bx {
                    let nx = if bx > x { x + 1 } else { x - 1 };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(nx, y),
                    });
                    x = nx;
                }
                while y != by {
                    let ny = if by > y { y + 1 } else { y - 1 };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(x, ny),
                    });
                    y = ny;
                }
                links
            }
            Topology::Torus2D { width, height } => {
                let mut links = Vec::new();
                let (mut x, mut y) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let flat = |x: u32, y: u32| y * width + x;
                // Per-axis direction: shorter way around, ties forward.
                while x != bx {
                    let fwd = (bx + width - x) % width;
                    let bwd = (x + width - bx) % width;
                    let nx = if fwd <= bwd {
                        (x + 1) % width
                    } else {
                        (x + width - 1) % width
                    };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(nx, y),
                    });
                    x = nx;
                }
                while y != by {
                    let fwd = (by + height - y) % height;
                    let bwd = (y + height - by) % height;
                    let ny = if fwd <= bwd {
                        (y + 1) % height
                    } else {
                        (y + height - 1) % height
                    };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(x, ny),
                    });
                    y = ny;
                }
                links
            }
            Topology::Hypercube { dim } => {
                let mut links = Vec::new();
                let mut cur = a.0;
                for d in 0..dim {
                    let bit = 1u32 << d;
                    if (cur ^ b.0) & bit != 0 {
                        let next = cur ^ bit;
                        links.push(LinkId {
                            from: cur,
                            to: next,
                        });
                        cur = next;
                    }
                }
                links
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_for_builds_minimal_square() {
        assert_eq!(
            Topology::mesh_for(16),
            Topology::Mesh2D {
                width: 4,
                height: 4
            }
        );
        assert_eq!(
            Topology::mesh_for(17),
            Topology::Mesh2D {
                width: 5,
                height: 4
            }
        );
        assert!(Topology::mesh_for(17).capacity() >= 17);
        assert_eq!(
            Topology::mesh_for(1),
            Topology::Mesh2D {
                width: 1,
                height: 1
            }
        );
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 4,
        };
        assert_eq!(t.hops(ProcId(0), ProcId(0)), 0);
        assert_eq!(t.hops(ProcId(0), ProcId(3)), 3);
        assert_eq!(t.hops(ProcId(0), ProcId(15)), 6);
        assert_eq!(t.hops(ProcId(5), ProcId(10)), 2);
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected;
        assert_eq!(t.hops(ProcId(0), ProcId(99)), 1);
        assert_eq!(t.hops(ProcId(7), ProcId(7)), 0);
        assert!(t.route(ProcId(0), ProcId(99)).is_empty());
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        // 0 (0,0) → 8 (2,2): X to (1,0), (2,0); Y to (2,1), (2,2).
        let route = t.route(ProcId(0), ProcId(8));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 5), (5, 8)]);
        assert_eq!(route.len() as u32, t.hops(ProcId(0), ProcId(8)));
    }

    #[test]
    fn route_handles_negative_directions() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        let route = t.route(ProcId(8), ProcId(0));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(8, 7), (7, 6), (6, 3), (3, 0)]);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        assert!(t.route(ProcId(4), ProcId(4)).is_empty());
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::Torus2D {
            width: 4,
            height: 4,
        };
        // 0 → 3 is one wraparound hop, not three mesh hops.
        assert_eq!(t.hops(ProcId(0), ProcId(3)), 1);
        let route = t.route(ProcId(0), ProcId(3));
        assert_eq!(route.len(), 1);
        assert_eq!((route[0].from, route[0].to), (0, 3));
        // Interior pairs match the mesh.
        assert_eq!(t.hops(ProcId(0), ProcId(5)), 2);
        assert_eq!(t.capacity(), 16);
    }

    #[test]
    fn hypercube_hops_are_hamming_distance() {
        let t = Topology::Hypercube { dim: 4 };
        assert_eq!(t.capacity(), 16);
        assert_eq!(t.hops(ProcId(0b0000), ProcId(0b1111)), 4);
        assert_eq!(t.hops(ProcId(0b0101), ProcId(0b0100)), 1);
        // e-cube route flips bits lowest-first.
        let route = t.route(ProcId(0b000), ProcId(0b101));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(0b000, 0b001), (0b001, 0b101)]);
    }

    #[test]
    fn hierarchical_routes_through_group_leaders() {
        let t = Topology::Hierarchical { group_size: 4 };
        assert_eq!(t.capacity(), u32::MAX);
        // Same processor / same group.
        assert_eq!(t.hops(ProcId(5), ProcId(5)), 0);
        assert_eq!(t.hops(ProcId(5), ProcId(7)), 1);
        let intra = t.route(ProcId(5), ProcId(7));
        assert_eq!((intra[0].from, intra[0].to), (5, 7));
        // Cross-group, neither endpoint a leader: climb to leader 4,
        // cross to leader 8, descend to 10 — three hops.
        assert_eq!(t.hops(ProcId(5), ProcId(10)), 3);
        let pairs: Vec<(u32, u32)> = t
            .route(ProcId(5), ProcId(10))
            .iter()
            .map(|l| (l.from, l.to))
            .collect();
        assert_eq!(pairs, vec![(5, 4), (4, 8), (8, 10)]);
        // Leader-to-leader is a single crossing.
        assert_eq!(t.hops(ProcId(4), ProcId(8)), 1);
        // One endpoint a leader: two hops.
        assert_eq!(t.hops(ProcId(4), ProcId(10)), 2);
        // group_size 1: everyone is their own leader — one hop apart.
        let flat = Topology::Hierarchical { group_size: 1 };
        assert_eq!(flat.hops(ProcId(3), ProcId(9)), 1);
    }

    #[test]
    fn capacity_saturates_instead_of_wrapping() {
        let huge = Topology::Mesh2D {
            width: u32::MAX,
            height: 2,
        };
        assert_eq!(huge.capacity(), u32::MAX);
        assert_eq!(Topology::Hypercube { dim: 40 }.capacity(), u32::MAX);
        assert_eq!(Topology::Hypercube { dim: 31 }.capacity(), 1 << 31);
    }

    #[test]
    #[should_panic(expected = "cannot route")]
    fn hops_panics_on_out_of_grid_processor() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        t.hops(ProcId(0), ProcId(9));
    }

    #[test]
    #[should_panic(expected = "cannot route")]
    fn route_panics_on_out_of_grid_processor() {
        Topology::Hypercube { dim: 2 }.route(ProcId(4), ProcId(0));
    }

    #[test]
    fn route_length_equals_hops_everywhere() {
        for t in [
            Topology::Mesh2D {
                width: 4,
                height: 3,
            },
            Topology::Torus2D {
                width: 4,
                height: 3,
            },
            Topology::Hypercube { dim: 3 },
            Topology::Hierarchical { group_size: 4 },
            Topology::Hierarchical { group_size: 1 },
        ] {
            let n = t.capacity().min(12);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        t.route(ProcId(a), ProcId(b)).len() as u32,
                        t.hops(ProcId(a), ProcId(b)),
                        "{t:?} {a}->{b}"
                    );
                }
            }
        }
    }
}
