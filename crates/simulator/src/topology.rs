//! Processor interconnect topologies.
//!
//! The Intel Paragon was a 2D mesh of i860 nodes with deterministic XY
//! (dimension-ordered) routing; [`Topology::Mesh2D`] models it. The
//! fully-connected variant is the idealized network under which the
//! abstract schedule model (every message costs exactly its edge
//! weight) is accurate — useful as a control in experiments.

use fastsched_schedule::ProcId;

/// A directed link between two adjacent routers, identified by the
/// flat indices of its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Source router (flat processor index).
    pub from: u32,
    /// Destination router (flat processor index).
    pub to: u32,
}

/// Interconnect shape.
///
/// ```
/// use fastsched_sim::Topology;
/// use fastsched_schedule::ProcId;
///
/// let mesh = Topology::Mesh2D { width: 4, height: 4 };
/// assert_eq!(mesh.hops(ProcId(0), ProcId(15)), 6);
/// let cube = Topology::Hypercube { dim: 4 };
/// assert_eq!(cube.hops(ProcId(0), ProcId(15)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of processors is one hop apart and every message
    /// uses a private link (no contention possible).
    FullyConnected,
    /// `width × height` 2D mesh with XY routing (all X hops first,
    /// then all Y hops). Processor `p` sits at
    /// `(p % width, p / width)`. The Intel Paragon's shape.
    Mesh2D {
        /// Mesh width (columns).
        width: u32,
        /// Mesh height (rows).
        height: u32,
    },
    /// `width × height` 2D torus: a mesh with wraparound links; XY
    /// routing picks the shorter direction per axis.
    Torus2D {
        /// Torus width (columns).
        width: u32,
        /// Torus height (rows).
        height: u32,
    },
    /// `2^dim`-node hypercube with dimension-ordered (e-cube) routing,
    /// the Intel iPSC family's shape.
    Hypercube {
        /// Number of dimensions (processors = 2^dim).
        dim: u32,
    },
}

impl Topology {
    /// A square-ish mesh with capacity for at least `procs`
    /// processors: width = ceil(sqrt(procs)).
    pub fn mesh_for(procs: u32) -> Self {
        let procs = procs.max(1);
        let width = (procs as f64).sqrt().ceil() as u32;
        let height = procs.div_ceil(width);
        Topology::Mesh2D { width, height }
    }

    /// Number of processor slots in the topology (`u32::MAX` for the
    /// fully-connected ideal).
    pub fn capacity(&self) -> u32 {
        match *self {
            Topology::FullyConnected => u32::MAX,
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                width * height
            }
            Topology::Hypercube { dim } => 1 << dim,
        }
    }

    /// Hop count between two processors under the topology's routing.
    pub fn hops(&self, a: ProcId, b: ProcId) -> u32 {
        match *self {
            Topology::FullyConnected => u32::from(a != b),
            Topology::Mesh2D { width, .. } => {
                let (ax, ay) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Torus2D { width, height } => {
                let (ax, ay) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let dx = ax.abs_diff(bx).min(width - ax.abs_diff(bx));
                let dy = ay.abs_diff(by).min(height - ay.abs_diff(by));
                dx + dy
            }
            Topology::Hypercube { .. } => (a.0 ^ b.0).count_ones(),
        }
    }

    /// The directed links an `a → b` message traverses (empty for
    /// `a == b` or the fully-connected ideal, whose links are private
    /// and never contended). Mesh and torus use XY routing; the
    /// hypercube uses dimension-ordered (e-cube) routing.
    pub fn route(&self, a: ProcId, b: ProcId) -> Vec<LinkId> {
        match *self {
            Topology::FullyConnected => Vec::new(),
            Topology::Mesh2D { width, .. } => {
                let mut links = Vec::new();
                let (mut x, mut y) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let flat = |x: u32, y: u32| y * width + x;
                while x != bx {
                    let nx = if bx > x { x + 1 } else { x - 1 };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(nx, y),
                    });
                    x = nx;
                }
                while y != by {
                    let ny = if by > y { y + 1 } else { y - 1 };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(x, ny),
                    });
                    y = ny;
                }
                links
            }
            Topology::Torus2D { width, height } => {
                let mut links = Vec::new();
                let (mut x, mut y) = (a.0 % width, a.0 / width);
                let (bx, by) = (b.0 % width, b.0 / width);
                let flat = |x: u32, y: u32| y * width + x;
                // Per-axis direction: shorter way around, ties forward.
                while x != bx {
                    let fwd = (bx + width - x) % width;
                    let bwd = (x + width - bx) % width;
                    let nx = if fwd <= bwd {
                        (x + 1) % width
                    } else {
                        (x + width - 1) % width
                    };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(nx, y),
                    });
                    x = nx;
                }
                while y != by {
                    let fwd = (by + height - y) % height;
                    let bwd = (y + height - by) % height;
                    let ny = if fwd <= bwd {
                        (y + 1) % height
                    } else {
                        (y + height - 1) % height
                    };
                    links.push(LinkId {
                        from: flat(x, y),
                        to: flat(x, ny),
                    });
                    y = ny;
                }
                links
            }
            Topology::Hypercube { dim } => {
                let mut links = Vec::new();
                let mut cur = a.0;
                for d in 0..dim {
                    let bit = 1u32 << d;
                    if (cur ^ b.0) & bit != 0 {
                        let next = cur ^ bit;
                        links.push(LinkId {
                            from: cur,
                            to: next,
                        });
                        cur = next;
                    }
                }
                links
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_for_builds_minimal_square() {
        assert_eq!(
            Topology::mesh_for(16),
            Topology::Mesh2D {
                width: 4,
                height: 4
            }
        );
        assert_eq!(
            Topology::mesh_for(17),
            Topology::Mesh2D {
                width: 5,
                height: 4
            }
        );
        assert!(Topology::mesh_for(17).capacity() >= 17);
        assert_eq!(
            Topology::mesh_for(1),
            Topology::Mesh2D {
                width: 1,
                height: 1
            }
        );
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 4,
        };
        assert_eq!(t.hops(ProcId(0), ProcId(0)), 0);
        assert_eq!(t.hops(ProcId(0), ProcId(3)), 3);
        assert_eq!(t.hops(ProcId(0), ProcId(15)), 6);
        assert_eq!(t.hops(ProcId(5), ProcId(10)), 2);
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected;
        assert_eq!(t.hops(ProcId(0), ProcId(99)), 1);
        assert_eq!(t.hops(ProcId(7), ProcId(7)), 0);
        assert!(t.route(ProcId(0), ProcId(99)).is_empty());
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        // 0 (0,0) → 8 (2,2): X to (1,0), (2,0); Y to (2,1), (2,2).
        let route = t.route(ProcId(0), ProcId(8));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 5), (5, 8)]);
        assert_eq!(route.len() as u32, t.hops(ProcId(0), ProcId(8)));
    }

    #[test]
    fn route_handles_negative_directions() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        let route = t.route(ProcId(8), ProcId(0));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(8, 7), (7, 6), (6, 3), (3, 0)]);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        assert!(t.route(ProcId(4), ProcId(4)).is_empty());
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::Torus2D {
            width: 4,
            height: 4,
        };
        // 0 → 3 is one wraparound hop, not three mesh hops.
        assert_eq!(t.hops(ProcId(0), ProcId(3)), 1);
        let route = t.route(ProcId(0), ProcId(3));
        assert_eq!(route.len(), 1);
        assert_eq!((route[0].from, route[0].to), (0, 3));
        // Interior pairs match the mesh.
        assert_eq!(t.hops(ProcId(0), ProcId(5)), 2);
        assert_eq!(t.capacity(), 16);
    }

    #[test]
    fn hypercube_hops_are_hamming_distance() {
        let t = Topology::Hypercube { dim: 4 };
        assert_eq!(t.capacity(), 16);
        assert_eq!(t.hops(ProcId(0b0000), ProcId(0b1111)), 4);
        assert_eq!(t.hops(ProcId(0b0101), ProcId(0b0100)), 1);
        // e-cube route flips bits lowest-first.
        let route = t.route(ProcId(0b000), ProcId(0b101));
        let pairs: Vec<(u32, u32)> = route.iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(pairs, vec![(0b000, 0b001), (0b001, 0b101)]);
    }

    #[test]
    fn route_length_equals_hops_everywhere() {
        for t in [
            Topology::Mesh2D {
                width: 4,
                height: 3,
            },
            Topology::Torus2D {
                width: 4,
                height: 3,
            },
            Topology::Hypercube { dim: 3 },
        ] {
            let n = t.capacity().min(12);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        t.route(ProcId(a), ProcId(b)).len() as u32,
                        t.hops(ProcId(a), ProcId(b)),
                        "{t:?} {a}->{b}"
                    );
                }
            }
        }
    }
}
