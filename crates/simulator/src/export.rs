//! Chrome-trace-event export of a simulated execution.
//!
//! [`chrome_trace`] renders an [`ExecutionReport`] recorded with
//! [`crate::SimConfig::trace`] as a Perfetto-loadable document: one
//! thread track per processor with each task's *measured* execution as
//! a complete slice, one flow arrow per remote message from producer
//! to consumer (annotated with its network transit), and one counter
//! track per mesh link showing when it was occupied. Side by side with
//! the abstract export from `fastsched-schedule`, this makes the gap
//! between predicted and measured timelines visible hop by hop.

use crate::report::{ExecutionReport, TraceEvent};
use fastsched_dag::Dag;
use fastsched_trace::perfetto::ChromeTrace;

/// Render the execution recorded in `report` as a Chrome trace-event
/// JSON document. Requires a report produced with
/// [`crate::SimConfig::trace`] set; without an event log only the
/// link-occupancy counters (also trace-gated) could be emitted, so the
/// slices and flows are simply absent.
pub fn chrome_trace(dag: &Dag, report: &ExecutionReport) -> String {
    let mut t = ChromeTrace::new();
    t.process_name(0, "simulated execution");

    // Name each processor track once, in id order.
    let mut procs: Vec<u32> = report
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskStart { proc, .. } => Some(*proc),
            _ => None,
        })
        .collect();
    procs.sort_unstable();
    procs.dedup();
    for &p in &procs {
        t.thread_name(0, p, &format!("PE{p}"));
    }

    let mut flow_id = 0u64;
    for e in &report.trace {
        match *e {
            TraceEvent::TaskStart { node, proc, time } => {
                let finish = report.finish_times[node as usize];
                t.complete_slice(
                    0,
                    proc,
                    dag.name(fastsched_dag::NodeId(node)),
                    time,
                    finish - time,
                    &[("node", u64::from(node))],
                );
            }
            TraceEvent::TaskFinish { .. } => {}
            TraceEvent::Message {
                from_node,
                to_node,
                from_proc,
                to_proc,
                sent,
                arrived,
            } => {
                let name = format!(
                    "{}->{}",
                    dag.name(fastsched_dag::NodeId(from_node)),
                    dag.name(fastsched_dag::NodeId(to_node))
                );
                // The tail must land inside the producing slice; the
                // message leaves at or after the producer's finish, so
                // bind one microsecond before it.
                let tail = sent.min(report.finish_times[from_node as usize].saturating_sub(1));
                t.flow_start(0, from_proc, flow_id, &name, tail);
                t.flow_finish(0, to_proc, flow_id, &name, arrived);
                flow_id += 1;
            }
        }
    }

    // One counter track per mesh link: 1 while a message occupies it.
    if !report.link_holds.is_empty() {
        t.process_name(1, "network links");
        for h in &report.link_holds {
            let name = format!("link {}->{}", h.from, h.to);
            t.counter(1, &name, h.start, &[("busy", 1)]);
            t.counter(1, &name, h.release, &[("busy", 0)]);
        }
    }

    t.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::network::ContentionModel;
    use crate::topology::Topology;
    use fastsched_dag::examples::paper_figure1;
    use fastsched_dag::NodeId;
    use fastsched_schedule::{evaluate_fixed_order, ProcId};

    fn traced_run() -> (fastsched_dag::Dag, ExecutionReport) {
        let g = paper_figure1();
        let order: Vec<NodeId> = g.topo_order().to_vec();
        let assignment: Vec<ProcId> = g.nodes().map(|n| ProcId(n.0 % 3)).collect();
        let s = evaluate_fixed_order(&g, &order, &assignment, 3);
        let r = simulate(
            &g,
            &s,
            &SimConfig {
                topology: Some(Topology::Mesh2D {
                    width: 2,
                    height: 2,
                }),
                contention: ContentionModel::Links { pipelining: 1 },
                trace: true,
                ..SimConfig::default()
            },
        );
        (g, r)
    }

    #[test]
    fn slices_flows_and_link_counters_are_emitted() {
        let (g, r) = traced_run();
        let json = chrome_trace(&g, &r);
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            g.node_count(),
            "one slice per task"
        );
        assert_eq!(json.matches("\"ph\":\"s\"").count(), r.messages as usize);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), r.messages as usize);
        assert!(!r.link_holds.is_empty());
        assert_eq!(
            json.matches("\"ph\":\"C\"").count(),
            2 * r.link_holds.len(),
            "busy + free sample per hold"
        );
        assert!(json.contains("\"network links\""));
    }

    #[test]
    fn untraced_report_exports_an_empty_timeline() {
        let g = paper_figure1();
        let order: Vec<NodeId> = g.topo_order().to_vec();
        let assignment: Vec<ProcId> = g.nodes().map(|_| ProcId(0)).collect();
        let s = evaluate_fixed_order(&g, &order, &assignment, 1);
        let r = simulate(&g, &s, &SimConfig::default());
        let json = chrome_trace(&g, &r);
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ph\":\"C\""));
    }
}
