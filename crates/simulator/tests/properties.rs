//! Property-based tests relating measured execution to the abstract
//! schedule: the simulator models strictly more cost than the
//! schedule evaluator (distance, contention, software overheads), so
//! a measured run can never beat the predicted makespan — and on the
//! ideal network it reproduces it exactly.

use fastsched_algorithms::{Fast, Scheduler};
use fastsched_sim::engine::{simulate, SimConfig};
use fastsched_sim::network::ContentionModel;
use fastsched_sim::Topology;
use fastsched_workloads::{random_layered_dag, RandomDagConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ideal_network_reproduces_the_predicted_makespan(
        params in (2usize..48, 0u64..1_000_000, 2u32..16)
    ) {
        let (nodes, seed, procs) = params;
        let config = RandomDagConfig {
            nodes,
            out_degree: (1, 4),
            node_weight: (1, 30),
            edge_weight: (1, 60),
        };
        let dag = random_layered_dag(&config, seed);
        let schedule = Fast::new().schedule(&dag, procs);
        let report = simulate(&dag, &schedule, &SimConfig::ideal());
        // Fully connected, zero hop latency, no contention, no
        // overheads: measured == predicted, never better.
        prop_assert_eq!(report.execution_time, schedule.makespan());
        prop_assert_eq!(report.contention_delay, 0);
    }

    #[test]
    fn measured_execution_never_beats_the_schedule_length(
        params in (2usize..48, 0u64..1_000_000, 2u32..16, 0u64..20, 1u64..8)
    ) {
        let (nodes, seed, procs, hop, pipelining) = params;
        let config = RandomDagConfig {
            nodes,
            out_degree: (1, 4),
            node_weight: (1, 30),
            edge_weight: (1, 60),
        };
        let dag = random_layered_dag(&config, seed);
        let schedule = Fast::new().schedule(&dag, procs);
        let report = simulate(
            &dag,
            &schedule,
            &SimConfig {
                topology: Some(Topology::mesh_for(procs)),
                hop_latency_us: hop,
                contention: ContentionModel::Links { pipelining },
                ..SimConfig::default()
            },
        );
        // Every network effect only adds cost on top of the abstract
        // model the schedule was evaluated under.
        prop_assert!(report.execution_time >= schedule.makespan());
    }
}
