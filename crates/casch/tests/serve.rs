//! End-to-end tests for `casch serve`: a real server on a loopback
//! port, real sockets, and responses checked byte-for-byte against
//! the in-process `schedule_into` path the service wraps.

use fastsched_algorithms::{HeftHetero, ProcessorSpeeds, Workspace};
use fastsched_casch::loadgen::{self, CorpusItem, LoadgenConfig};
use fastsched_casch::protocol::{
    placements_json, placements_of, CommSpec, Request, Response, ScheduleRequest,
};
use fastsched_casch::serve::{scheduler_by_name, ModelScheduler, ServeConfig, Server};
use fastsched_casch::ServeSummary;
use fastsched_dag::examples::{chain, fork_join, paper_figure1};
use fastsched_dag::io::DagSpec;
use fastsched_dag::Dag;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Bind on a free loopback port and run the server on its own thread.
fn start_server(config: ServeConfig) -> (SocketAddr, JoinHandle<ServeSummary>, Arc<AtomicBool>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, join, shutdown)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

/// Read exactly `n` response lines (responses may arrive out of
/// order; callers index the result by id).
fn read_responses(reader: &mut impl BufRead, n: usize) -> Vec<Response> {
    let mut out = Vec::with_capacity(n);
    let mut line = String::new();
    while out.len() < n {
        line.clear();
        let read = reader.read_line(&mut line).expect("read response line");
        assert!(
            read > 0,
            "server closed early: got {}/{n} responses",
            out.len()
        );
        out.push(Response::parse(line.trim_end()).expect("parse response"));
    }
    out
}

fn small_corpus() -> Vec<Dag> {
    vec![paper_figure1(), fork_join(8, 5, 3), chain(10, 4, 2)]
}

#[test]
fn responses_are_byte_identical_to_schedule_into() {
    let (addr, join, shutdown) = start_server(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let corpus = small_corpus();
    let total = 12u64;

    let mut stream = connect(addr);
    let mut request_lines = String::new();
    for id in 1..=total {
        let dag = &corpus[(id - 1) as usize % corpus.len()];
        let mut req = ScheduleRequest::new(id, DagSpec::from_dag(dag));
        req.procs = Some(4);
        request_lines.push_str(&req.to_line());
        request_lines.push('\n');
    }
    stream
        .write_all(request_lines.as_bytes())
        .expect("send pipelined requests");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses = read_responses(&mut reader, total as usize);

    // Local reference: the exact API the server claims to expose.
    let fast = scheduler_by_name("fast").expect("fast");
    let mut ws = Workspace::new();
    let mut by_id: HashMap<u64, _> = HashMap::new();
    for resp in responses {
        match resp {
            Response::Schedule(r) => {
                by_id.insert(r.id, r);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(
        by_id.len(),
        total as usize,
        "every id answered exactly once"
    );
    for id in 1..=total {
        let dag = &corpus[(id - 1) as usize % corpus.len()];
        let expected = fast.schedule_into(dag, 4, &mut ws);
        let got = &by_id[&id];
        assert_eq!(got.makespan, expected.makespan(), "makespan for id {id}");
        assert_eq!(
            placements_json(&got.placements),
            placements_json(&placements_of(&expected)),
            "placements for id {id}"
        );
        assert_eq!(got.procs, 4);
        assert_eq!(got.algo, "FAST");
    }

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, total);
    assert_eq!(summary.rejected, 0);
}

#[test]
fn comm_requests_run_the_model_path_and_bad_specs_are_rejected() {
    use fastsched_schedule::{AlphaBeta, CommModel, Hierarchical, IDEAL_LINK};
    let (addr, join, shutdown) = start_server(ServeConfig {
        threads: 1,
        max_groups: 4,
        ..ServeConfig::default()
    });
    let dag = paper_figure1();
    let spec = DagSpec::from_dag(&dag);

    // 1: α–β over ETF. 2: hierarchical over FAST (procs from the
    // table). 3: α–β identity over FAST — must be byte-identical to
    // the plain homogeneous response. 4–7: rejected at parse time
    // (group cap, comm+speeds, model-less algo, procs mismatch).
    let mut reqs: Vec<ScheduleRequest> = Vec::new();
    let mut r1 = ScheduleRequest::new(1, spec.clone());
    r1.algo = "etf".into();
    r1.procs = Some(4);
    r1.comm = Some(CommSpec::AlphaBeta {
        alpha: 20,
        beta_num: 3,
        beta_den: 2,
    });
    reqs.push(r1);
    let mut r2 = ScheduleRequest::new(2, spec.clone());
    r2.comm = Some(CommSpec::Hier {
        groups: vec![2, 2],
        intra: [0, 1, 1],
        inter: [40, 2, 1],
    });
    reqs.push(r2);
    let mut r3 = ScheduleRequest::new(3, spec.clone());
    r3.procs = Some(4);
    r3.comm = Some(CommSpec::AlphaBeta {
        alpha: 0,
        beta_num: 1,
        beta_den: 1,
    });
    reqs.push(r3);
    let mut r4 = ScheduleRequest::new(4, spec.clone());
    r4.comm = Some(CommSpec::Hier {
        groups: vec![1; 5],
        intra: [0, 1, 1],
        inter: [1, 1, 1],
    });
    reqs.push(r4);
    let mut r5 = ScheduleRequest::new(5, spec.clone());
    r5.algo = "heft".into();
    r5.speeds = Some(vec![100, 50]);
    r5.comm = Some(CommSpec::Ideal);
    reqs.push(r5);
    let mut r6 = ScheduleRequest::new(6, spec.clone());
    r6.algo = "dsc".into();
    r6.comm = Some(CommSpec::Ideal);
    reqs.push(r6);
    let mut r7 = ScheduleRequest::new(7, spec.clone());
    r7.procs = Some(9);
    r7.comm = Some(CommSpec::Hier {
        groups: vec![2, 2],
        intra: [0, 1, 1],
        inter: [1, 1, 1],
    });
    reqs.push(r7);

    let mut stream = connect(addr);
    let mut lines = String::new();
    for r in &reqs {
        lines.push_str(&r.to_line());
        lines.push('\n');
    }
    stream.write_all(lines.as_bytes()).expect("send requests");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut by_id: HashMap<u64, Response> = HashMap::new();
    for resp in read_responses(&mut reader, reqs.len()) {
        let id = match &resp {
            Response::Schedule(r) => r.id,
            Response::Error { id, .. } => *id,
            other => panic!("unexpected response: {other:?}"),
        };
        by_id.insert(id, resp);
    }

    let ab = CommModel::AlphaBeta(AlphaBeta::new(20, 3, 2));
    let etf = ModelScheduler::by_name("etf").expect("etf");
    let expected = etf.schedule_with_model(&dag, 4, &ab);
    match &by_id[&1] {
        Response::Schedule(r) => {
            assert_eq!(r.algo, "ETF");
            assert_eq!(r.makespan, expected.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&expected))
            );
        }
        other => panic!("id 1: {other:?}"),
    }

    let hier = CommModel::Hierarchical(
        Hierarchical::from_group_sizes(&[2, 2], IDEAL_LINK, AlphaBeta::new(40, 2, 1))
            .expect("hier"),
    );
    let fast = ModelScheduler::by_name("fast").expect("fast");
    let expected = fast.schedule_with_model(&dag, 4, &hier);
    match &by_id[&2] {
        Response::Schedule(r) => {
            assert_eq!(r.procs, 4, "procs fixed by the group table");
            assert_eq!(r.makespan, expected.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&expected))
            );
        }
        other => panic!("id 2: {other:?}"),
    }

    // The identity model must reproduce the homogeneous path's bytes.
    let mut ws = Workspace::new();
    let plain = scheduler_by_name("fast")
        .expect("fast")
        .schedule_into(&dag, 4, &mut ws);
    match &by_id[&3] {
        Response::Schedule(r) => {
            assert_eq!(r.makespan, plain.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&plain)),
                "alpha-beta(0,1,1) must be byte-identical to homogeneous"
            );
        }
        other => panic!("id 3: {other:?}"),
    }

    for (id, needle) in [
        (4, "group limit"),
        (5, "cannot be combined"),
        (6, "no communication-model path"),
        (7, "disagrees with the hier group table"),
    ] {
        match &by_id[&id] {
            Response::Error { error, .. } => {
                assert!(error.starts_with("parse:"), "id {id}: {error}");
                assert!(error.contains(needle), "id {id}: {error}");
            }
            other => panic!("id {id}: expected error, got {other:?}"),
        }
    }

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.malformed, 4);
}

#[test]
fn mem_caps_requests_run_the_memory_path_and_bad_combos_are_rejected() {
    use fastsched_dag::DagBuilder;
    use fastsched_schedule::{CommModel, MemCapsSpec, MemoryCapacities};
    let (addr, join, shutdown) = start_server(ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    });
    // Four independent 6-byte tasks: a 12-byte budget fits exactly two
    // per processor, so memory-aware FAST must use at least two lanes.
    let mut b = DagBuilder::new();
    for _ in 0..4 {
        b.add_task_with_mem(10, 6);
    }
    let dag = b.build().expect("dag");
    let spec = DagSpec::from_dag(&dag);

    // 1: uniform caps over FAST. 2: per-proc caps fix the processor
    // count. 3: unbounded caps must be byte-identical to the plain
    // homogeneous response. 4–7: rejected at parse time (speeds
    // combo, memory-blind algo, procs mismatch, per-proc table above
    // the server cap).
    let mut reqs: Vec<ScheduleRequest> = Vec::new();
    let mut r1 = ScheduleRequest::new(1, spec.clone());
    r1.procs = Some(2);
    r1.mem_caps = Some(MemCapsSpec::Uniform(12));
    reqs.push(r1);
    let mut r2 = ScheduleRequest::new(2, spec.clone());
    r2.mem_caps = Some(MemCapsSpec::PerProc(vec![12, 12, 12]));
    reqs.push(r2);
    let mut r3 = ScheduleRequest::new(3, spec.clone());
    r3.procs = Some(4);
    r3.mem_caps = Some(MemCapsSpec::Uniform(u64::MAX));
    reqs.push(r3);
    let mut r4 = ScheduleRequest::new(4, spec.clone());
    r4.algo = "heft".into();
    r4.speeds = Some(vec![100, 50]);
    r4.mem_caps = Some(MemCapsSpec::Uniform(12));
    reqs.push(r4);
    let mut r5 = ScheduleRequest::new(5, spec.clone());
    r5.algo = "etf".into();
    r5.mem_caps = Some(MemCapsSpec::Uniform(12));
    reqs.push(r5);
    let mut r6 = ScheduleRequest::new(6, spec.clone());
    r6.procs = Some(4);
    r6.mem_caps = Some(MemCapsSpec::PerProc(vec![12, 12]));
    reqs.push(r6);
    let mut r7 = ScheduleRequest::new(7, spec.clone());
    r7.mem_caps = Some(MemCapsSpec::PerProc(vec![12; 100_000]));
    reqs.push(r7);

    let mut stream = connect(addr);
    let mut lines = String::new();
    for r in &reqs {
        lines.push_str(&r.to_line());
        lines.push('\n');
    }
    stream.write_all(lines.as_bytes()).expect("send requests");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut by_id: HashMap<u64, Response> = HashMap::new();
    for resp in read_responses(&mut reader, reqs.len()) {
        let id = match &resp {
            Response::Schedule(r) => r.id,
            Response::Error { id, .. } => *id,
            other => panic!("unexpected response: {other:?}"),
        };
        by_id.insert(id, resp);
    }

    let fast = ModelScheduler::by_name("fast").expect("fast");
    let capped = MemoryCapacities::uniform(CommModel::Ideal, 12, 2);
    let expected = fast.schedule_with_model(&dag, 2, &capped);
    match &by_id[&1] {
        Response::Schedule(r) => {
            assert_eq!(r.algo, "FAST");
            assert_eq!(r.makespan, expected.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&expected))
            );
            // Two lanes of two 6-byte tasks each: the capacity split
            // is visible in the answer.
            let lanes: std::collections::HashSet<u32> =
                r.placements.iter().map(|&(p, _, _)| p).collect();
            assert!(lanes.len() >= 2, "cap 12 cannot hold all four tasks");
        }
        other => panic!("id 1: {other:?}"),
    }

    let capped = MemoryCapacities::new(CommModel::Ideal, vec![12, 12, 12]);
    let expected = fast.schedule_with_model(&dag, 3, &capped);
    match &by_id[&2] {
        Response::Schedule(r) => {
            assert_eq!(r.procs, 3, "procs fixed by the mem_caps table");
            assert_eq!(r.makespan, expected.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&expected))
            );
        }
        other => panic!("id 2: {other:?}"),
    }

    // An unbounded budget must reproduce the homogeneous path's bytes.
    let mut ws = Workspace::new();
    let plain = scheduler_by_name("fast")
        .expect("fast")
        .schedule_into(&dag, 4, &mut ws);
    match &by_id[&3] {
        Response::Schedule(r) => {
            assert_eq!(r.makespan, plain.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&plain)),
                "a never-binding budget must be byte-identical to homogeneous"
            );
        }
        other => panic!("id 3: {other:?}"),
    }

    for (id, needle) in [
        (4, "cannot be combined with `speeds`"),
        (5, "no memory-aware path"),
        (6, "disagrees with `mem_caps` length"),
        (7, "above the server's processor limit"),
    ] {
        match &by_id[&id] {
            Response::Error { error, .. } => {
                assert!(error.starts_with("parse:"), "id {id}: {error}");
                assert!(error.contains(needle), "id {id}: {error}");
            }
            other => panic!("id {id}: expected error, got {other:?}"),
        }
    }

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.malformed, 4);
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    let (addr, join, shutdown) = start_server(ServeConfig::default());
    let mut stream = connect(addr);

    // Three bad lines, then one good request: the errors must not
    // poison the connection.
    let good = ScheduleRequest::new(4, DagSpec::from_dag(&paper_figure1()));
    let batch = format!(
        "this is not json\n{{\"op\":\"bogus\"}}\n{{\"op\":\"schedule\",\"id\":3}}\n{}\n",
        good.to_line()
    );
    stream.write_all(batch.as_bytes()).expect("send");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses = read_responses(&mut reader, 4);
    let mut errors = 0;
    let mut ok = 0;
    for resp in responses {
        match resp {
            Response::Error { id, error } => {
                errors += 1;
                assert!(
                    error.starts_with("parse:"),
                    "error vocabulary: got `{error}` for id {id}"
                );
                // Ids 1 and 2 fall back to the line number; id 3 is
                // taken from the request.
                assert!((1..=3).contains(&id), "unexpected error id {id}");
            }
            Response::Schedule(r) => {
                ok += 1;
                assert_eq!(r.id, 4);
                assert_eq!(r.makespan, 18, "paper figure 1 FAST makespan");
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((errors, ok), (3, 1));

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.malformed, 3);
    assert_eq!(summary.completed, 1);
}

#[test]
fn oversized_lines_are_rejected_without_buffering_them() {
    let (addr, join, shutdown) = start_server(ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    });
    let mut stream = connect(addr);
    let huge = format!("{}\n", "x".repeat(100_000));
    stream.write_all(huge.as_bytes()).expect("send oversized");
    // The connection survives; a normal request still works.
    let good = ScheduleRequest::new(7, DagSpec::from_dag(&chain(3, 2, 1)));
    stream
        .write_all(format!("{}\n", good.to_line()).as_bytes())
        .expect("send follow-up");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses = read_responses(&mut reader, 2);
    let mut saw_too_long = false;
    let mut saw_ok = false;
    for resp in responses {
        match resp {
            Response::Error { error, .. } => {
                assert!(error.contains("line exceeds 256 bytes"), "got `{error}`");
                saw_too_long = true;
            }
            Response::Schedule(r) => {
                assert_eq!(r.id, 7);
                saw_ok = true;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(saw_too_long && saw_ok);

    shutdown.store(true, Ordering::SeqCst);
    join.join().expect("server thread");
}

#[test]
fn oversized_procs_and_speeds_are_rejected_not_allocated() {
    // Schedulers allocate O(procs) scratch, so a hostile processor
    // count must die at validation — with a tiny cap the limit falls
    // back to the DAG's own node count (9 for paper figure 1).
    let (addr, join, shutdown) = start_server(ServeConfig {
        max_procs: 8,
        ..ServeConfig::default()
    });
    let mut stream = connect(addr);

    let mut huge = ScheduleRequest::new(1, DagSpec::from_dag(&paper_figure1()));
    huge.procs = Some(u32::MAX);
    let mut wide = ScheduleRequest::new(2, DagSpec::from_dag(&paper_figure1()));
    wide.algo = "heft".to_string();
    wide.speeds = Some(vec![100; 64]);
    // Up to the node count always fits, whatever the cap — and the
    // connection survives the two rejections.
    let mut good = ScheduleRequest::new(3, DagSpec::from_dag(&paper_figure1()));
    good.procs = Some(9);
    let batch = format!(
        "{}\n{}\n{}\n",
        huge.to_line(),
        wide.to_line(),
        good.to_line()
    );
    stream.write_all(batch.as_bytes()).expect("send");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut by_id: HashMap<u64, Response> = HashMap::new();
    for resp in read_responses(&mut reader, 3) {
        let id = match &resp {
            Response::Schedule(r) => r.id,
            Response::Error { id, .. } => *id,
            other => panic!("unexpected response: {other:?}"),
        };
        by_id.insert(id, resp);
    }
    for id in [1u64, 2] {
        match &by_id[&id] {
            Response::Error { error, .. } => {
                assert!(
                    error.starts_with("parse:") && error.contains("exceeds"),
                    "id {id}: got `{error}`"
                );
            }
            other => panic!("id {id}: expected rejection, got {other:?}"),
        }
    }
    match &by_id[&3] {
        Response::Schedule(r) => assert_eq!(r.makespan, 18, "paper figure 1 FAST makespan"),
        other => panic!("id 3: expected a schedule, got {other:?}"),
    }

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.malformed, 2);
    assert_eq!(summary.completed, 1);
}

#[test]
fn excess_load_is_rejected_as_overloaded_not_buffered() {
    // One worker, one queue slot, and requests whose scheduling cost
    // (ETF over many processors) dwarfs their parse cost: the queue
    // must fill and admission control must answer `overloaded`.
    let (addr, join, shutdown) = start_server(ServeConfig {
        threads: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let dag = fork_join(400, 50, 20);
    let total = 24u64;

    let mut stream = connect(addr);
    let mut burst = String::new();
    for id in 1..=total {
        let mut req = ScheduleRequest::new(id, DagSpec::from_dag(&dag));
        req.algo = "etf".to_string();
        req.procs = Some(64);
        burst.push_str(&req.to_line());
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("send burst");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses = read_responses(&mut reader, total as usize);
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    for resp in responses {
        match resp {
            Response::Schedule(_) => ok += 1,
            Response::Error { error, .. } => {
                assert_eq!(error, "overloaded", "only overload errors expected");
                overloaded += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, total);
    assert!(ok >= 2, "worker + queue slot must still serve: ok={ok}");
    assert!(
        overloaded > 0,
        "a 1-deep queue under a {total}-request burst must shed load"
    );

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.rejected, overloaded);
    assert_eq!(summary.completed, ok);
}

#[test]
fn stats_and_shutdown_requests_work_over_the_wire() {
    let (addr, join, _shutdown) = start_server(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let total = 6u64;

    let mut stream = connect(addr);
    for id in 1..=total {
        let req = ScheduleRequest::new(id, DagSpec::from_dag(&paper_figure1()));
        stream
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    read_responses(&mut reader, total as usize);

    // The response write happens just before the counter update, so
    // poll the stats until the last completion lands.
    let mut snap = None;
    for _ in 0..200 {
        stream
            .write_all(format!("{}\n", Request::Stats { id: 99 }.to_line()).as_bytes())
            .expect("send stats");
        match read_responses(&mut reader, 1).remove(0) {
            Response::Stats(s) => {
                if s.completed == total {
                    snap = Some(s);
                    break;
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = snap.expect("stats never reached the completed count");
    assert_eq!(snap.id, 99);
    assert_eq!(snap.threads, 2);
    assert_eq!(snap.accepted, total);
    assert_eq!(snap.rejected, 0);
    assert_eq!(snap.in_flight, 0);
    assert_eq!(snap.workers.len(), 2);
    let per_worker: u64 = snap.workers.iter().map(|w| w.requests).sum();
    assert_eq!(per_worker, total);

    // Graceful shutdown over the wire: the ack carries the completed
    // total and the server run loop exits.
    stream
        .write_all(format!("{}\n", Request::Shutdown { id: 100 }.to_line()).as_bytes())
        .expect("send shutdown");
    match read_responses(&mut reader, 1).remove(0) {
        Response::Shutdown { id, completed } => {
            assert_eq!(id, 100);
            assert_eq!(completed, total);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, total);
    assert_eq!(summary.connections, 1);
}

#[test]
fn heterogeneous_requests_run_heft_over_speeds() {
    let (addr, join, shutdown) = start_server(ServeConfig::default());
    let dag = paper_figure1();

    let mut req = ScheduleRequest::new(1, DagSpec::from_dag(&dag));
    req.algo = "heft".to_string();
    req.speeds = Some(vec![100, 50, 25]);
    let mut stream = connect(addr);
    stream
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let resp = read_responses(&mut reader, 1).remove(0);

    let expected = HeftHetero::new(ProcessorSpeeds::new(vec![100, 50, 25])).schedule(&dag);
    match resp {
        Response::Schedule(r) => {
            assert_eq!(r.procs, 3);
            assert_eq!(r.algo, "HEFT-hetero");
            assert_eq!(r.makespan, expected.makespan());
            assert_eq!(
                placements_json(&r.placements),
                placements_json(&placements_of(&expected))
            );
        }
        other => panic!("unexpected response: {other:?}"),
    }

    shutdown.store(true, Ordering::SeqCst);
    join.join().expect("server thread");
}

#[test]
fn loadgen_under_load_sees_zero_mismatches() {
    let (addr, join, _shutdown) = start_server(ServeConfig {
        threads: 4,
        queue_depth: 1024,
        ..ServeConfig::default()
    });

    let report = loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        corpus: small_corpus()
            .into_iter()
            .enumerate()
            .map(|(i, dag)| CorpusItem {
                name: format!("corpus-{i}"),
                dag,
            })
            .collect(),
        algo: "fast".to_string(),
        procs: Some(8),
        rate: 0.0, // unpaced: as fast as the sockets go
        total: Some(300),
        conns: 2,
        check: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");

    assert_eq!(report.sent, 300);
    assert_eq!(report.ok, 300, "queue depth 1024 admits the whole run");
    assert_eq!(
        report.mismatches, 0,
        "service output must equal schedule_into"
    );
    assert_eq!(report.unanswered, 0);
    assert_eq!(report.rejected + report.timeouts + report.errors, 0);
    assert!(report.p50_us > 0 || report.ok == 0);

    let ack = loadgen::request_once(&addr.to_string(), &Request::Shutdown { id: 1 }, 5.0)
        .expect("shutdown");
    assert!(ack.contains("\"shutdown\":true"), "got `{ack}`");
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, 300);
}

/// Like [`start_server`] but with the scrape listener bound on its
/// own loopback port; returns both addresses.
fn start_server_with_metrics(
    config: ServeConfig,
) -> (
    SocketAddr,
    SocketAddr,
    JoinHandle<ServeSummary>,
    Arc<AtomicBool>,
) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..config
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let maddr = server.metrics_addr().expect("metrics addr");
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, maddr, join, shutdown)
}

/// Drive `total` schedule requests through `stream` and poll
/// `op:"stats"` until every completion has landed (the response
/// write happens just before the counter update).
fn drive_and_settle(
    stream: &mut TcpStream,
    total: u64,
) -> fastsched_casch::protocol::StatsSnapshot {
    let corpus = small_corpus();
    for id in 1..=total {
        let dag = &corpus[(id - 1) as usize % corpus.len()];
        let req = ScheduleRequest::new(id, DagSpec::from_dag(dag));
        stream
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    read_responses(&mut reader, total as usize);
    for _ in 0..200 {
        stream
            .write_all(format!("{}\n", Request::Stats { id: 7 }.to_line()).as_bytes())
            .expect("send stats");
        match read_responses(&mut reader, 1).remove(0) {
            Response::Stats(s) => {
                if s.completed == total {
                    return s;
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("stats never reached completed == {total}");
}

#[test]
fn metrics_endpoint_serves_exposition_consistent_with_stats() {
    let (addr, maddr, join, shutdown) = start_server_with_metrics(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let total = 9u64;
    let mut stream = connect(addr);
    let snap = drive_and_settle(&mut stream, total);

    let page =
        loadgen::scrape_metrics(&maddr.to_string(), "/metrics", 2.0).expect("scrape /metrics");

    // Every sample line parses as `name[{labels}] value` with a
    // numeric value, and families are announced before their samples.
    let mut announced: Vec<&str> = Vec::new();
    for line in page.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            announced.push(rest.split(' ').next().unwrap());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = series.split('{').next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| announced.contains(b))
            .unwrap_or(name);
        assert!(
            announced.contains(&base),
            "sample `{name}` before its # TYPE header"
        );
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad value in `{line}`"));
    }
    for family in [
        "casch_requests_total",
        "casch_requests_accepted_total",
        "casch_in_flight",
        "casch_queue_depth",
        "casch_host_cores",
        "casch_phase_latency_us",
        "casch_pool_job_latency_us",
    ] {
        assert!(
            announced.contains(&family),
            "missing family {family} in exposition"
        );
    }

    // The per-algorithm counters sum to exactly what op:"stats"
    // reports as completed — same registry, no drift.
    let algo_sum: u64 = page
        .lines()
        .filter(|l| l.starts_with("casch_requests_total{algo="))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(algo_sum, snap.completed);
    assert!(page.contains("casch_requests_total{algo=\"fast\"} 9\n"));

    // Phase histograms: the schedule phase saw every request, and
    // cumulative bucket counts are monotone within each series.
    for phase in ["queue", "schedule", "serialize", "write"] {
        let count_line = format!("casch_phase_latency_us_count{{phase=\"{phase}\"}} {total}\n");
        assert!(page.contains(&count_line), "missing/short series: {phase}");
        let prefix = format!("casch_phase_latency_us_bucket{{phase=\"{phase}\"");
        let mut last = 0u64;
        for line in page.lines().filter(|l| l.starts_with(&prefix)) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
        assert_eq!(last, total, "+Inf bucket equals count for {phase}");
    }

    // The JSON twin is the op:"stats" payload verbatim.
    let body =
        loadgen::scrape_metrics(&maddr.to_string(), "/metrics.json", 2.0).expect("/metrics.json");
    match Response::parse(body.trim_end()).expect("parse /metrics.json") {
        Response::Stats(s) => {
            assert_eq!(s.completed, snap.completed);
            assert_eq!(s.threads, snap.threads);
            assert_eq!(s.host_cores, snap.host_cores);
            assert!(s.host_cores > 0, "host_cores must be detected");
            assert!(!s.phases.is_empty(), "phase breakdown missing");
            let queue = s.phases.iter().find(|p| p.phase == "queue").expect("queue");
            assert_eq!(queue.count, total);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    shutdown.store(true, Ordering::SeqCst);
    let summary = join.join().expect("server thread");
    assert_eq!(summary.completed, total);
}

#[test]
fn access_log_samples_every_nth_request() {
    let path = std::env::temp_dir().join(format!(
        "casch-access-test-{}-{:?}.ndjson",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let (addr, join, shutdown) = start_server(ServeConfig {
        threads: 2,
        access_log: Some(path.clone()),
        log_sample_rate: 2,
        ..ServeConfig::default()
    });
    let total = 10u64;
    let mut stream = connect(addr);
    drive_and_settle(&mut stream, total);
    shutdown.store(true, Ordering::SeqCst);
    join.join().expect("server thread");

    let text = std::fs::read_to_string(&path).expect("read access log");
    let lines: Vec<&str> = text.lines().collect();
    // Rate 2 logs the 1st, 3rd, ... completion: exactly half of 10.
    assert_eq!(lines.len(), 5, "sample rate 2 over 10 requests");
    for line in &lines {
        for key in [
            "\"ts_ms\":",
            "\"id\":",
            "\"algo\":\"fast\"",
            "\"nodes\":",
            "\"procs\":",
            "\"outcome\":\"ok\"",
            "\"queue_us\":",
            "\"schedule_us\":",
            "\"serialize_us\":",
            "\"write_us\":",
        ] {
            assert!(line.contains(key), "access line missing {key}: {line}");
        }
    }
    std::fs::remove_file(&path).expect("cleanup");
}
