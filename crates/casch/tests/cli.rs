//! Integration tests for the `casch` CLI binary.

use std::process::Command;

fn casch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_casch"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = casch().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = casch().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_info_schedule_roundtrip() {
    let dir = std::env::temp_dir().join(format!("casch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("gauss.json");

    // generate
    let out = casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dag_path.exists());

    // info
    let out = casch()
        .args(["info", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes:        20"), "{text}");
    assert!(text.contains("CP length"));

    // dot
    let out = casch()
        .args(["dot", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));

    // schedule with gantt
    let out = casch()
        .args([
            "schedule", "--algo", "fast", "--procs", "8", "--gantt", "--dag",
        ])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algorithm:        FAST"));
    assert!(text.contains("schedule length:"));
    assert!(text.contains("PE0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_simulate_roundtrip_with_svg() {
    let dir = std::env::temp_dir().join(format!("casch-sim-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("fft.json");
    let sched_path = dir.join("sched.json");
    let svg_path = dir.join("gantt.svg");

    let out = casch()
        .args(["generate", "--app", "fft", "--size", "16", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = casch()
        .args(["schedule", "--algo", "dcp", "--procs", "6"])
        .args(["--dag"])
        .arg(&dag_path)
        .args(["--out-schedule"])
        .arg(&sched_path)
        .args(["--svg"])
        .arg(&svg_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(sched_path.exists() && svg_path.exists());
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    // Re-simulate the saved schedule on a hypercube with overheads.
    let out = casch()
        .args(["simulate", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--topology", "hypercube", "--send-overhead", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("measured execution:"));
    assert!(text.contains("slowdown:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extension_algorithms_are_reachable_from_cli() {
    let dir = std::env::temp_dir().join(format!("casch-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    for algo in ["ish", "ez", "lc", "fast-sa", "hlfet", "mcp", "heft"] {
        let out = casch()
            .args(["schedule", "--algo", algo, "--procs", "8", "--dag"])
            .arg(&dag_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_runs_all_paper_algorithms() {
    let out = casch()
        .args(["compare", "--app", "fft", "--size", "16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for algo in ["FAST", "DSC", "MD", "ETF", "DLS"] {
        assert!(text.contains(algo), "missing {algo}: {text}");
    }
}

#[test]
fn schedule_rejects_unknown_algorithm() {
    let out = casch()
        .args([
            "schedule",
            "--algo",
            "quantum",
            "--dag",
            "/nonexistent.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn generate_rejects_unknown_app() {
    let out = casch()
        .args(["generate", "--app", "doom", "--size", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown app"));
}
