//! Integration tests for the `casch` CLI binary.

use std::process::Command;

fn casch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_casch"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = casch().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = casch().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_info_schedule_roundtrip() {
    let dir = std::env::temp_dir().join(format!("casch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("gauss.json");

    // generate
    let out = casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dag_path.exists());

    // info
    let out = casch()
        .args(["info", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes:        20"), "{text}");
    assert!(text.contains("CP length"));

    // dot
    let out = casch()
        .args(["dot", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));

    // schedule with gantt
    let out = casch()
        .args([
            "schedule", "--algo", "fast", "--procs", "8", "--gantt", "--dag",
        ])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algorithm:        FAST"));
    assert!(text.contains("schedule length:"));
    assert!(text.contains("PE0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_simulate_roundtrip_with_svg() {
    let dir = std::env::temp_dir().join(format!("casch-sim-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("fft.json");
    let sched_path = dir.join("sched.json");
    let svg_path = dir.join("gantt.svg");

    let out = casch()
        .args(["generate", "--app", "fft", "--size", "16", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = casch()
        .args(["schedule", "--algo", "dcp", "--procs", "6"])
        .args(["--dag"])
        .arg(&dag_path)
        .args(["--out-schedule"])
        .arg(&sched_path)
        .args(["--svg"])
        .arg(&svg_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(sched_path.exists() && svg_path.exists());
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    // Re-simulate the saved schedule on a hypercube with overheads.
    let out = casch()
        .args(["simulate", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--topology", "hypercube", "--send-overhead", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("measured execution:"));
    assert!(text.contains("slowdown:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extension_algorithms_are_reachable_from_cli() {
    let dir = std::env::temp_dir().join(format!("casch-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    for algo in ["ish", "ez", "lc", "fast-sa", "hlfet", "mcp", "heft"] {
        let out = casch()
            .args(["schedule", "--algo", algo, "--procs", "8", "--dag"])
            .arg(&dag_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_accepts_legal_schedules_and_rejects_corrupted_ones() {
    let dir = std::env::temp_dir().join(format!("casch-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    let sched_path = dir.join("sched.json");
    let report_path = dir.join("report.json");

    casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    let out = casch()
        .args(["schedule", "--algo", "fast", "--procs", "4", "--dag"])
        .arg(&dag_path)
        .args(["--out-schedule"])
        .arg(&sched_path)
        .output()
        .unwrap();
    assert!(out.status.success());

    // A legal schedule verifies under the homogeneous model.
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OK:"), "{text}");
    assert!(text.contains("makespan"), "{text}");

    // Corrupt the JSON by swapping the first task's start and finish
    // keys (a reversed-duration task): verify must reject with a
    // structured violation and a nonzero exit.
    let json = std::fs::read_to_string(&sched_path).unwrap();
    let corrupted = json
        .replacen("\"start\"", "\"__tmp__\"", 1)
        .replacen("\"finish\"", "\"start\"", 1)
        .replacen("\"__tmp__\"", "\"finish\"", 1);
    assert_ne!(json, corrupted, "corruption must land");
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, corrupted).unwrap();
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&bad_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("INVALID:"), "{text}");

    // A homogeneous schedule fails under a 2x-speed hetero model
    // (durations are nominal, the model expects them halved)…
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--speeds", "200,200,200,200"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID:"));

    // …and passes when every speed is nominal.
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--speeds", "100,100,100,100"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Too few --speeds entries for the schedule is a usage error.
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--speeds", "100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--speeds"));

    // Report cross-check: a matching simulator report is consistent…
    let out = casch()
        .args(["simulate", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--out-report"])
        .arg(&report_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--report"])
        .arg(&report_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("report is consistent"));

    // …and a report for a different schedule is caught.
    let other_sched = dir.join("other.json");
    let out = casch()
        .args(["schedule", "--algo", "hlfet", "--procs", "2", "--dag"])
        .arg(&dag_path)
        .args(["--out-schedule"])
        .arg(&other_sched)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = casch()
        .args(["verify", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&other_sched)
        .args(["--report"])
        .arg(&report_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID:"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `casch batch` over a directory and a manifest: one NDJSON object
/// per DAG, schema-complete, with makespans identical to per-call
/// `casch schedule` (the shared workspace must not change results).
#[test]
fn batch_emits_schema_complete_ndjson_matching_per_call_runs() {
    use serde::Value;

    let dir = std::env::temp_dir().join(format!("casch-batch-{}", std::process::id()));
    let dag_dir = dir.join("dags");
    std::fs::create_dir_all(&dag_dir).unwrap();

    for (app, size, name) in [
        ("gauss", "4", "a-gauss.json"),
        ("fft", "8", "b-fft.json"),
        ("random", "30", "c-rand.json"),
    ] {
        let out = casch()
            .args(["generate", "--app", app, "--size", size, "--out"])
            .arg(dag_dir.join(name))
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    // A non-DAG file in the directory must be ignored.
    std::fs::write(dag_dir.join("notes.txt"), "not a dag").unwrap();

    let out = casch()
        .args(["batch", "--algo", "fast", "--procs", "8", "--dir"])
        .arg(&dag_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ndjson = String::from_utf8_lossy(&out.stdout).to_string();
    let all_lines: Vec<&str> = ndjson.lines().collect();
    // 3 per-DAG lines plus the aggregate summary line.
    assert_eq!(all_lines.len(), 4, "{ndjson}");
    let (summary, lines) = all_lines.split_last().unwrap();

    let field = |line: &str, key: &str| -> Value {
        let doc: Value = serde_json::from_str(line).expect("each line must be JSON");
        let Value::Object(pairs) = doc else {
            panic!("line must be an object")
        };
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing {key} in {line}"))
    };
    for line in lines {
        for key in [
            "dag", "nodes", "edges", "algo", "procs", "threads", "makespan", "seconds",
        ] {
            field(line, key);
        }
        assert_eq!(field(line, "algo"), Value::String("FAST".to_string()));
        assert_eq!(field(line, "procs"), Value::UInt(8));
        assert_eq!(field(line, "threads"), Value::UInt(1));
    }
    // The summary line aggregates the whole batch.
    assert_eq!(field(summary, "summary"), Value::Bool(true));
    assert_eq!(field(summary, "dags"), Value::UInt(3));
    assert_eq!(field(summary, "algo"), Value::String("FAST".to_string()));
    field(summary, "seconds");
    field(summary, "dags_per_sec");
    // --dir output is sorted by file name.
    assert!(matches!(field(lines[0], "dag"), Value::String(s) if s.ends_with("a-gauss.json")));
    assert!(matches!(field(lines[2], "dag"), Value::String(s) if s.ends_with("c-rand.json")));

    // Batch makespans equal the per-call command's.
    for line in lines {
        let Value::String(dag_path) = field(line, "dag") else {
            panic!("dag must be a string")
        };
        let out = casch()
            .args(["schedule", "--algo", "fast", "--procs", "8", "--dag"])
            .arg(&dag_path)
            .output()
            .unwrap();
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let per_call = text
            .lines()
            .find_map(|l| l.strip_prefix("schedule length:"))
            .unwrap()
            .trim()
            .parse::<u64>()
            .unwrap();
        assert_eq!(field(line, "makespan"), Value::UInt(per_call), "{dag_path}");
    }

    // Manifest mode (with blanks and comments) + --out to a file.
    let manifest = dir.join("manifest.txt");
    std::fs::write(
        &manifest,
        format!(
            "# batch manifest\n\n{}\n{}\n",
            dag_dir.join("c-rand.json").display(),
            dag_dir.join("a-gauss.json").display()
        ),
    )
    .unwrap();
    let out_path = dir.join("batch.ndjson");
    let out = casch()
        .args(["batch", "--algo", "dls", "--procs", "4", "--manifest"])
        .arg(&manifest)
        .args(["--out"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).unwrap();
    // 2 per-DAG lines plus the summary.
    assert_eq!(written.lines().count(), 3);
    for line in written.lines() {
        assert_eq!(field(line, "algo"), Value::String("DLS".to_string()));
    }

    // Usage errors: neither or both sources, and an empty directory.
    let out = casch().args(["batch", "--algo", "fast"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dir or --manifest"));
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = casch()
        .args(["batch", "--algo", "fast", "--dir"])
        .arg(&empty)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no DAG files"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `casch batch --threads` shards the batch without changing any
/// result: per-DAG makespans at 2 and 4 workers are identical to the
/// serial run, lines stay in sorted input order, and each line carries
/// the requested thread count.
#[test]
fn batch_threads_shard_without_changing_results() {
    use serde::Value;

    let dir = std::env::temp_dir().join(format!("casch-batch-par-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (seed, name) in [
        ("1", "a.json"),
        ("2", "b.json"),
        ("3", "c.json"),
        ("4", "d.json"),
        ("5", "e.json"),
    ] {
        let out = casch()
            .args([
                "generate", "--app", "random", "--size", "40", "--seed", seed, "--out",
            ])
            .arg(dir.join(name))
            .output()
            .unwrap();
        assert!(out.status.success());
    }

    let field = |line: &str, key: &str| -> Value {
        let doc: Value = serde_json::from_str(line).expect("each line must be JSON");
        let Value::Object(pairs) = doc else {
            panic!("line must be an object")
        };
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing {key} in {line}"))
    };
    // Per-DAG (dag, makespan) pairs, summary line stripped.
    let run = |threads: &str| -> Vec<(Value, Value)> {
        let out = casch()
            .args([
                "batch",
                "--algo",
                "fast",
                "--procs",
                "8",
                "--threads",
                threads,
                "--dir",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let all: Vec<&str> = text.lines().collect();
        assert_eq!(all.len(), 6, "5 DAG lines + summary: {text}");
        let (summary, lines) = all.split_last().unwrap();
        let want_threads = Value::UInt(threads.parse().unwrap());
        assert_eq!(field(summary, "threads"), want_threads.clone());
        lines
            .iter()
            .map(|l| {
                assert_eq!(field(l, "threads"), want_threads.clone());
                (field(l, "dag"), field(l, "makespan"))
            })
            .collect()
    };

    let serial = run("1");
    for threads in ["2", "4"] {
        assert_eq!(run(threads), serial, "--threads {threads} diverged");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_runs_all_paper_algorithms() {
    let out = casch()
        .args(["compare", "--app", "fft", "--size", "16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for algo in ["FAST", "DSC", "MD", "ETF", "DLS"] {
        assert!(text.contains(algo), "missing {algo}: {text}");
    }
}

#[test]
fn schedule_rejects_unknown_algorithm() {
    let out = casch()
        .args([
            "schedule",
            "--algo",
            "quantum",
            "--dag",
            "/nonexistent.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn generate_rejects_unknown_app() {
    let out = casch()
        .args(["generate", "--app", "doom", "--size", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown app"));
}

#[test]
fn gantt_width_flag_is_clamped_and_requires_gantt() {
    let dir = std::env::temp_dir().join(format!("casch-gw-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();

    let chart = |width: &str| {
        let out = casch()
            .args([
                "schedule",
                "--algo",
                "fast",
                "--procs",
                "8",
                "--gantt",
                "--gantt-width",
                width,
                "--dag",
            ])
            .arg(&dag_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "width {width}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let narrow = chart("30");
    let wide = chart("120");
    assert!(narrow.contains("PE0") && wide.contains("PE0"));
    // Only the chart's bar lines (PE-prefixed): the header includes a
    // wall-clock scheduling-time line whose printed length varies.
    let widest_line = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("PE"))
            .map(str::len)
            .max()
            .unwrap_or(0)
    };
    assert!(
        widest_line(&wide) > widest_line(&narrow),
        "wider chart must produce longer lines"
    );
    // Out-of-range widths are clamped, not rejected.
    let tiny = chart("1");
    assert_eq!(widest_line(&tiny), widest_line(&chart("20")));

    // --gantt-width alone is a user error.
    let out = casch()
        .args([
            "schedule",
            "--algo",
            "fast",
            "--gantt-width",
            "100",
            "--dag",
        ])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--gantt"));

    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance bar for the Perfetto exporter: a simulator run on a
/// 16-processor random DAG must produce a JSON document that parses,
/// whose slices are monotone and non-overlapping per track, and whose
/// flow arrows pair up start/finish with consistent timestamps.
#[test]
fn perfetto_export_from_simulator_round_trips() {
    use serde::Value;

    let dir = std::env::temp_dir().join(format!("casch-pf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("rand.json");
    let sched_path = dir.join("sched.json");
    let trace_path = dir.join("sim.perfetto.json");

    casch()
        .args([
            "generate", "--app", "random", "--size", "80", "--seed", "7", "--out",
        ])
        .arg(&dag_path)
        .output()
        .unwrap();
    let out = casch()
        .args(["schedule", "--algo", "fast", "--procs", "16", "--dag"])
        .arg(&dag_path)
        .args(["--out-schedule"])
        .arg(&sched_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = casch()
        .args(["simulate", "--dag"])
        .arg(&dag_path)
        .args(["--schedule"])
        .arg(&sched_path)
        .args(["--perfetto"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Round-trip: the document must parse as JSON.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc: Value = serde_json::from_str(&text).expect("perfetto output must be valid JSON");
    let Value::Object(fields) = &doc else {
        panic!("top level must be an object")
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents array");
    let Value::Array(events) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty());

    let str_of = |e: &Value, key: &str| -> Option<String> {
        let Value::Object(pairs) = e else { return None };
        pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Value::String(s) = v {
                Some(s.clone())
            } else {
                None
            }
        })
    };
    let num_of = |e: &Value, key: &str| -> Option<u64> {
        let Value::Object(pairs) = e else { return None };
        pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Value::UInt(x) = v {
                Some(*x)
            } else {
                None
            }
        })
    };

    // Per-track slices must be monotone and non-overlapping.
    let mut tracks: std::collections::HashMap<(u64, u64), Vec<(u64, u64)>> =
        std::collections::HashMap::new();
    let mut slices = 0usize;
    for e in events {
        if str_of(e, "ph").as_deref() == Some("X") {
            slices += 1;
            let key = (num_of(e, "pid").unwrap(), num_of(e, "tid").unwrap());
            tracks
                .entry(key)
                .or_default()
                .push((num_of(e, "ts").unwrap(), num_of(e, "dur").unwrap()));
        }
    }
    assert!(slices >= 80, "one slice per task, {slices} found");
    for ((pid, tid), mut spans) in tracks {
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "overlapping slices on track ({pid},{tid}): {w:?}"
            );
        }
    }

    // Flow events must pair up: each id has exactly one start and one
    // finish, and the finish never precedes the start.
    let mut flows: std::collections::HashMap<u64, (Vec<u64>, Vec<u64>)> =
        std::collections::HashMap::new();
    for e in events {
        match str_of(e, "ph").as_deref() {
            Some("s") => flows
                .entry(num_of(e, "id").unwrap())
                .or_default()
                .0
                .push(num_of(e, "ts").unwrap()),
            Some("f") => flows
                .entry(num_of(e, "id").unwrap())
                .or_default()
                .1
                .push(num_of(e, "ts").unwrap()),
            _ => {}
        }
    }
    assert!(!flows.is_empty(), "a 16-processor run must send messages");
    for (id, (starts, finishes)) in flows {
        assert_eq!(starts.len(), 1, "flow {id} must start exactly once");
        assert_eq!(finishes.len(), 1, "flow {id} must finish exactly once");
        assert!(
            starts[0] <= finishes[0],
            "flow {id} finishes before it starts"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_perfetto_export_is_valid_json() {
    use serde::Value;
    let dir = std::env::temp_dir().join(format!("casch-spf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    let trace_path = dir.join("sched.perfetto.json");
    casch()
        .args(["generate", "--app", "fft", "--size", "16", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    let out = casch()
        .args(["schedule", "--algo", "fast", "--procs", "8", "--dag"])
        .arg(&dag_path)
        .args(["--perfetto"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc: Value = serde_json::from_str(&text).expect("valid JSON");
    assert!(matches!(doc, Value::Object(_)));
    assert!(text.contains("\"ph\":\"X\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_localizes_schedule_and_report_divergence() {
    let dir = std::env::temp_dir().join(format!("casch-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "5", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    let sched = |algo: &str, out_path: &std::path::Path| {
        let out = casch()
            .args(["schedule", "--algo", algo, "--procs", "8", "--dag"])
            .arg(&dag_path)
            .args(["--out-schedule"])
            .arg(out_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let a = dir.join("fast.json");
    let b = dir.join("heft.json");
    sched("fast", &a);
    sched("heft", &b);

    // Two different algorithms: the diff localizes the divergence.
    let out = casch()
        .args(["diff", "--a"])
        .arg(&a)
        .args(["--b"])
        .arg(&b)
        .args(["--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan:"), "{text}");

    // A schedule against itself is identical.
    let out = casch()
        .args(["diff", "--a"])
        .arg(&a)
        .args(["--b"])
        .arg(&a)
        .args(["--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Execution reports diff too, without needing --dag.
    let report = |hop: &str, out_path: &std::path::Path| {
        let out = casch()
            .args(["simulate", "--dag"])
            .arg(&dag_path)
            .args(["--schedule"])
            .arg(&a)
            .args(["--hop", hop, "--out-report"])
            .arg(out_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let ra = dir.join("ra.json");
    let rb = dir.join("rb.json");
    report("0", &ra);
    report("40", &rb);
    let out = casch()
        .args(["diff", "--a"])
        .arg(&ra)
        .args(["--b"])
        .arg(&rb)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("execution time:"));

    // Mixing payload kinds is rejected.
    let out = casch()
        .args(["diff", "--a"])
        .arg(&a)
        .args(["--b"])
        .arg(&ra)
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

/// With capture compiled in, `casch explain` must answer from the
/// recorded provenance: every candidate processor probed, the chosen
/// one, and the local-search transfers.
#[cfg(feature = "trace")]
#[test]
fn explain_reports_candidates_and_transfers() {
    let dir = std::env::temp_dir().join(format!("casch-ex-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "5", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();

    // Re-run mode: schedule inline and explain one node.
    let out = casch()
        .args([
            "explain", "--algo", "fast", "--procs", "8", "--node", "0", "--dag",
        ])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("placed on"), "{text}");
    assert!(text.contains("candidates probed:"), "{text}");
    assert!(text.contains("<- chosen"), "{text}");

    // File mode: explain from a saved NDJSON trace.
    let trace_path = dir.join("trace.ndjson");
    let out = casch()
        .args(["schedule", "--algo", "fast", "--procs", "8", "--dag"])
        .arg(&dag_path)
        .args(["--trace"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = casch()
        .args(["explain", "--node", "3", "--in"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("node 3 placed on"));

    // Without --node, summarize what the trace can explain.
    let out = casch()
        .args(["explain", "--in"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("placement provenance for"), "{text}");
    assert!(!text.contains("for 0 node(s)"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Without capture, `casch explain` degrades gracefully: a warning on
/// re-run, a clear error when a node is queried.
#[cfg(not(feature = "trace"))]
#[test]
fn explain_degrades_gracefully_without_capture() {
    let dir = std::env::temp_dir().join(format!("casch-exoff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dag_path = dir.join("g.json");
    casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(&dag_path)
        .output()
        .unwrap();
    let out = casch()
        .args(["explain", "--algo", "fast", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    if !String::from_utf8_lossy(&out.stdout).contains("for 0 node(s)") {
        // A workspace-wide build can unify `fastsched-trace/capture`
        // into the binary (the trace crate's own tests default it on)
        // even though this test crate's `trace` feature is off; the
        // capture-off premise is then void, so there is nothing to
        // check here — the capture-on path is covered by the
        // `trace`-gated tests above.
        eprintln!("capture unified on by the workspace build; skipping");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("without the `trace` feature"),
        "bin={} stdout={:?} stderr={:?}",
        env!("CARGO_BIN_EXE_casch"),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let out = casch()
        .args(["explain", "--node", "0", "--algo", "fast", "--dag"])
        .arg(&dag_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no provenance"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_reports_rejected_inputs_without_aborting() {
    use serde::Value;

    let dir = std::env::temp_dir().join(format!("casch-batch-rej-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = casch()
        .args(["generate", "--app", "gauss", "--size", "4", "--out"])
        .arg(dir.join("good.json"))
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(dir.join("broken.json"), "this is not json").unwrap();
    std::fs::write(dir.join("broken.tg"), "nor a task graph {{{").unwrap();

    let out = casch()
        .args(["batch", "--algo", "fast", "--procs", "4", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    // Two bad files must not abort the batch.
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let field = |line: &str, key: &str| -> Option<Value> {
        let Value::Object(pairs) = serde_json::from_str(line).expect("line must be JSON") else {
            panic!("line must be an object")
        };
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let ndjson = String::from_utf8_lossy(&out.stdout).to_string();
    let lines: Vec<&str> = ndjson.lines().collect();
    // 2 rejected rows + 1 result row + the summary.
    assert_eq!(lines.len(), 4, "{ndjson}");
    let rejected: Vec<&&str> = lines
        .iter()
        .filter(|l| field(l, "rejected") == Some(Value::Bool(true)))
        .collect();
    assert_eq!(rejected.len(), 2, "{ndjson}");
    for line in &rejected {
        assert!(matches!(field(line, "dag"), Some(Value::String(_))));
        assert!(
            matches!(field(line, "error"), Some(Value::String(e)) if !e.is_empty()),
            "rejected rows carry the reason: {line}"
        );
    }
    let summary = lines.last().unwrap();
    assert_eq!(field(summary, "summary"), Some(Value::Bool(true)));
    assert_eq!(field(summary, "dags"), Some(Value::UInt(1)));
    assert_eq!(field(summary, "rejected"), Some(Value::UInt(2)));
    // The good DAG is still scheduled normally.
    let scheduled = lines
        .iter()
        .find(|l| field(l, "makespan").is_some())
        .expect("one scheduled row");
    assert!(matches!(field(scheduled, "dag"), Some(Value::String(s)) if s.ends_with("good.json")));

    // A batch with no valid inputs at all is still an error.
    std::fs::remove_file(dir.join("good.json")).unwrap();
    let out = casch()
        .args(["batch", "--algo", "fast", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("rejected"));
    std::fs::remove_dir_all(&dir).ok();
}
