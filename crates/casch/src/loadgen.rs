//! `casch loadgen` — an open-loop load generator for `casch serve`.
//!
//! Drives a running server with schedule requests drawn round-robin
//! from a DAG corpus at a configured **offered** arrival rate
//! (open-loop: send times follow the rate clock, never the server's
//! responses, so an overloaded server faces the honest arrival
//! process and must shed load via its admission control rather than
//! silently slowing the generator down). A warmup phase lets worker
//! workspaces and caches reach steady state before measurement
//! starts.
//!
//! Each of [`LoadgenConfig::conns`] connections runs one paced sender
//! and one tallying receiver; requests are pipelined, correlated by
//! `id`, and per-request latency is measured from the moment the line
//! is written to the moment its response line is parsed.
//!
//! With [`LoadgenConfig::check`], every response's placements are
//! compared byte-for-byte (via [`crate::protocol::placements_json`])
//! against a local `schedule_into` run on the same DAG — the
//! end-to-end proof that the service returns exactly what the library
//! computes.

use crate::protocol::{json_escape, placements_json, placements_of, Request, Response};
use crate::serve::scheduler_by_name;
use fastsched_algorithms::Workspace;
use fastsched_dag::{io::DagSpec, Dag};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One corpus entry: a named DAG to schedule.
pub struct CorpusItem {
    /// Display name (file path or generator tag).
    pub name: String,
    /// The graph.
    pub dag: Dag,
}

/// Knobs for one load-generation run.
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// DAGs cycled through round-robin (request `i` uses
    /// `corpus[i % len]`).
    pub corpus: Vec<CorpusItem>,
    /// Algorithm for every request.
    pub algo: String,
    /// Processor count for every request (`None` = one per node).
    pub procs: Option<u32>,
    /// Offered arrival rate in requests/second across all
    /// connections; `<= 0` sends unpaced (as fast as the sockets
    /// accept — the saturation probe).
    pub rate: f64,
    /// Stop after exactly this many requests (overrides
    /// `duration_s`).
    pub total: Option<u64>,
    /// Measurement window in seconds (after warmup) when `total` is
    /// unset.
    pub duration_s: f64,
    /// Warmup seconds: requests sent but excluded from the tallies.
    pub warmup_s: f64,
    /// Parallel connections.
    pub conns: usize,
    /// Per-request `timeout_ms` to stamp on every request.
    pub timeout_ms: Option<u64>,
    /// Verify each response byte-for-byte against a local
    /// `schedule_into` run.
    pub check: bool,
    /// Seconds to keep retrying the initial connect (covers server
    /// startup races in scripts).
    pub connect_retry_s: f64,
    /// Scrape `GET /metrics` from this address mid-run (halfway
    /// through a paced window; shortly after start otherwise) and
    /// carry the page in [`LoadReport::metrics_scrape`]. This proves
    /// the scrape path answers *while* the server is under the
    /// offered load, not just at rest.
    pub metrics_addr: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            corpus: Vec::new(),
            algo: "fast".to_string(),
            procs: None,
            rate: 1000.0,
            total: None,
            duration_s: 5.0,
            warmup_s: 0.0,
            conns: 1,
            timeout_ms: None,
            check: false,
            connect_retry_s: 5.0,
            metrics_addr: None,
        }
    }
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Offered rate (requests/second; 0 = unpaced).
    pub offered_rps: f64,
    /// Connections used.
    pub conns: usize,
    /// Requests sent during warmup (excluded from every other field).
    pub warmup_sent: u64,
    /// Measured requests sent.
    pub sent: u64,
    /// Successful schedule responses.
    pub ok: u64,
    /// `overloaded` rejections (admission control).
    pub rejected: u64,
    /// `timeout` responses.
    pub timeouts: u64,
    /// Other error responses.
    pub errors: u64,
    /// Measured requests that never got a response before the drain
    /// deadline.
    pub unanswered: u64,
    /// Whether responses were verified against local scheduling.
    pub checked: bool,
    /// Responses whose placements/makespan differed from the local
    /// run (always 0 for a correct server).
    pub mismatches: u64,
    /// Median round-trip latency of successful responses, µs.
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile round-trip latency, µs — computed from the
    /// full measured sample set (every response is kept), not a
    /// bounded ring, so the tail is exact even under saturation.
    pub p999_us: u64,
    /// Mean round-trip latency, µs.
    pub mean_us: u64,
    /// Seconds from the start of measurement to the last response.
    pub wall_s: f64,
    /// Successful responses per second over `wall_s`.
    pub achieved_rps: f64,
    /// The `/metrics` page scraped mid-run when
    /// [`LoadgenConfig::metrics_addr`] was set (not part of
    /// [`LoadReport::to_json_line`]).
    pub metrics_scrape: Option<String>,
}

impl LoadReport {
    /// Render as one NDJSON summary line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"summary\":true,\"offered_rps\":{:.1},\"conns\":{},\"warmup_sent\":{},\
             \"sent\":{},\"ok\":{},\"rejected\":{},\"timeouts\":{},\"errors\":{},\
             \"unanswered\":{},\"checked\":{},\"mismatches\":{},\"p50_us\":{},\"p99_us\":{},\
             \"p999_us\":{},\"mean_us\":{},\"wall_s\":{:.3},\"achieved_rps\":{:.1}}}",
            self.offered_rps,
            self.conns,
            self.warmup_sent,
            self.sent,
            self.ok,
            self.rejected,
            self.timeouts,
            self.errors,
            self.unanswered,
            self.checked,
            self.mismatches,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.mean_us,
            self.wall_s,
            self.achieved_rps
        )
    }
}

/// Per-connection tallies merged into the final [`LoadReport`].
#[derive(Default)]
struct ConnTally {
    warmup_sent: u64,
    sent: u64,
    ok: u64,
    rejected: u64,
    timeouts: u64,
    errors: u64,
    unanswered: u64,
    mismatches: u64,
    latencies_us: Vec<u64>,
    last_response: Option<Instant>,
}

/// Connect with retries over `window` seconds — absorbs the race
/// between a freshly spawned server and its first client.
fn connect_with_retry(addr: &str, window: f64) -> Result<TcpStream, String> {
    let deadline = Instant::now() + Duration::from_secs_f64(window.max(0.0));
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Open a fresh connection, send one request line, and return the
/// (raw) single response line. Used for `--stats` and `--shutdown`.
pub fn request_once(addr: &str, request: &Request, retry_s: f64) -> Result<String, String> {
    let stream = connect_with_retry(addr, retry_s)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    w.write_all(format!("{}\n", request.to_line()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection without answering".to_string());
    }
    Ok(line.trim_end().to_string())
}

/// `GET path` from a `casch serve --metrics-addr` listener and
/// return the response body. Fails on any status other than 200.
pub fn scrape_metrics(addr: &str, path: &str, retry_s: f64) -> Result<String, String> {
    let stream = connect_with_retry(addr, retry_s)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    w.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("scrape send: {e}"))?;
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .map_err(|e| format!("scrape recv: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("scrape: malformed HTTP response")?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("scrape {path}: {status}"));
    }
    Ok(body.to_string())
}

/// Run one open-loop load generation against `config.addr`.
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, String> {
    if config.corpus.is_empty() {
        return Err("loadgen needs a non-empty corpus".to_string());
    }
    let conns = config.conns.max(1);

    // Pre-render each corpus item's request-line template (everything
    // after the id) and, when checking, its locally computed expected
    // response bytes.
    let mut templates: Vec<String> = Vec::with_capacity(config.corpus.len());
    let mut expected: Vec<Option<(u64, String)>> = Vec::with_capacity(config.corpus.len());
    let mut ws = Workspace::new();
    let local = if config.check {
        Some(scheduler_by_name(&config.algo)?)
    } else {
        None
    };
    for item in &config.corpus {
        let mut tmpl = format!(",\"algo\":\"{}\"", json_escape(&config.algo));
        if let Some(p) = config.procs {
            tmpl.push_str(&format!(",\"procs\":{p}"));
        }
        if let Some(t) = config.timeout_ms {
            tmpl.push_str(&format!(",\"timeout_ms\":{t}"));
        }
        tmpl.push_str(",\"dag\":");
        tmpl.push_str(
            &serde_json::to_string(&DagSpec::from_dag(&item.dag)).map_err(|e| e.to_string())?,
        );
        tmpl.push('}');
        templates.push(tmpl);
        expected.push(local.as_ref().map(|s| {
            let procs = config
                .procs
                .unwrap_or_else(|| item.dag.node_count().max(1) as u32);
            let schedule = s.schedule_into(&item.dag, procs, &mut ws);
            (
                schedule.makespan(),
                placements_json(&placements_of(&schedule)),
            )
        }));
    }
    let templates = Arc::new(templates);
    let expected = Arc::new(expected);

    // Global open-loop clock: request g (0-based) is due at
    // start + g/rate; connection k sends the g with g % conns == k.
    let start = Instant::now() + Duration::from_millis(10);
    let warmup = Duration::from_secs_f64(config.warmup_s.max(0.0));
    let send_deadline = config
        .total
        .is_none()
        .then(|| start + warmup + Duration::from_secs_f64(config.duration_s.max(0.01)));
    let next_global = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for _conn in 0..conns {
        let stream = connect_with_retry(&config.addr, config.connect_retry_s)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| e.to_string())?;
        let templates = Arc::clone(&templates);
        let expected = Arc::clone(&expected);
        let next_global = Arc::clone(&next_global);
        let rate = config.rate;
        let total = config.total;
        let check = config.check;
        handles.push(std::thread::spawn(move || {
            run_connection(
                stream,
                &templates,
                expected,
                &next_global,
                rate,
                total,
                send_deadline,
                start,
                warmup,
                check,
            )
        }));
    }

    // Mid-run scraper: waits for the load to be established, then
    // fetches /metrics exactly once while requests are in flight.
    let scraper = config.metrics_addr.clone().map(|maddr| {
        let delay = if config.total.is_none() {
            warmup + Duration::from_secs_f64(config.duration_s.max(0.01) / 2.0)
        } else {
            Duration::from_millis(250)
        };
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            scrape_metrics(&maddr, "/metrics", 2.0)
        })
    });

    let mut merged = ConnTally::default();
    for h in handles {
        let tally = h
            .join()
            .map_err(|_| "loadgen connection thread panicked".to_string())??;
        merged.warmup_sent += tally.warmup_sent;
        merged.sent += tally.sent;
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.timeouts += tally.timeouts;
        merged.errors += tally.errors;
        merged.unanswered += tally.unanswered;
        merged.mismatches += tally.mismatches;
        merged.latencies_us.extend(tally.latencies_us);
        merged.last_response = match (merged.last_response, tally.last_response) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    let measure_start = start + warmup;
    let wall_s = merged
        .last_response
        .map(|t| t.saturating_duration_since(measure_start).as_secs_f64())
        .unwrap_or(0.0)
        .max(1e-9);
    merged.latencies_us.sort_unstable();
    let at = |q: f64| {
        if merged.latencies_us.is_empty() {
            0
        } else {
            merged.latencies_us[((merged.latencies_us.len() - 1) as f64 * q).round() as usize]
        }
    };
    let mean_us = if merged.latencies_us.is_empty() {
        0
    } else {
        merged.latencies_us.iter().sum::<u64>() / merged.latencies_us.len() as u64
    };
    let metrics_scrape = match scraper {
        Some(h) => match h.join() {
            Ok(Ok(page)) => Some(page),
            Ok(Err(e)) => return Err(format!("mid-run metrics scrape failed: {e}")),
            Err(_) => return Err("metrics scraper thread panicked".to_string()),
        },
        None => None,
    };
    Ok(LoadReport {
        offered_rps: config.rate.max(0.0),
        conns,
        warmup_sent: merged.warmup_sent,
        sent: merged.sent,
        ok: merged.ok,
        rejected: merged.rejected,
        timeouts: merged.timeouts,
        errors: merged.errors,
        unanswered: merged.unanswered,
        checked: config.check,
        mismatches: merged.mismatches,
        p50_us: at(0.50),
        p99_us: at(0.99),
        p999_us: at(0.999),
        mean_us,
        wall_s,
        achieved_rps: merged.ok as f64 / wall_s,
        metrics_scrape,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_connection(
    stream: TcpStream,
    templates: &[String],
    expected: Arc<Vec<Option<(u64, String)>>>,
    next_global: &AtomicU64,
    rate: f64,
    total: Option<u64>,
    send_deadline: Option<Instant>,
    start: Instant,
    warmup: Duration,
    check: bool,
) -> Result<ConnTally, String> {
    let in_flight: Arc<Mutex<HashMap<u64, (Instant, bool)>>> = Arc::new(Mutex::new(HashMap::new()));
    let reader_stream = stream.try_clone().map_err(|e| e.to_string())?;
    let mut writer = stream;
    let measure_start = start + warmup;

    // Receiver: parse response lines, match ids, tally.
    let recv_in_flight = Arc::clone(&in_flight);
    let sent_done = Arc::new(AtomicU64::new(0)); // 0 = sending, 1 = done
    let recv_sent_done = Arc::clone(&sent_done);
    let receiver = std::thread::spawn(move || {
        let mut tally = ConnTally::default();
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if recv_sent_done.load(Ordering::SeqCst) == 1 {
                let empty = recv_in_flight.lock().expect("in-flight lock").is_empty();
                if empty {
                    break;
                }
                let deadline =
                    *drain_deadline.get_or_insert(Instant::now() + Duration::from_secs(10));
                if Instant::now() > deadline {
                    // Still-unanswered entries are tallied once, in
                    // run_connection, after the sender has also
                    // finished — one code path for every exit
                    // (deadline, server close, read error).
                    break;
                }
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break, // server closed
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => break,
            }
            let now = Instant::now();
            let Ok(resp) = Response::parse(line.trim_end()) else {
                tally.errors += 1;
                continue;
            };
            let (id, outcome) = match &resp {
                Response::Schedule(r) => (r.id, Outcome::Ok),
                Response::Error { id, error } if error == "overloaded" => (*id, Outcome::Rejected),
                Response::Error { id, error } if error == "timeout" => (*id, Outcome::Timeout),
                Response::Error { id, .. } => (*id, Outcome::Error),
                _ => continue, // stats/shutdown lines are not ours
            };
            let Some((sent_at, measured)) =
                recv_in_flight.lock().expect("in-flight lock").remove(&id)
            else {
                continue;
            };
            if !measured {
                continue;
            }
            tally.last_response = Some(tally.last_response.map_or(now, |t| t.max(now)));
            match outcome {
                Outcome::Ok => {
                    tally.ok += 1;
                    let us = now
                        .duration_since(sent_at)
                        .as_micros()
                        .min(u64::MAX as u128);
                    tally.latencies_us.push(us as u64);
                    if check {
                        if let Response::Schedule(r) = &resp {
                            let idx = ((id - 1) as usize) % expected_len_hint(&expected);
                            if let Some((makespan, placements)) = &expected[idx] {
                                if r.makespan != *makespan
                                    || placements_json(&r.placements) != *placements
                                {
                                    tally.mismatches += 1;
                                }
                            }
                        }
                    }
                }
                Outcome::Rejected => tally.rejected += 1,
                Outcome::Timeout => tally.timeouts += 1,
                Outcome::Error => tally.errors += 1,
            }
        }
        tally
    });

    // Sender: paced open loop over the shared global sequence.
    let mut warmup_sent: u64 = 0;
    let mut sent: u64 = 0;
    loop {
        let g = next_global.fetch_add(1, Ordering::SeqCst);
        if let Some(t) = total {
            if g >= t {
                break;
            }
        }
        let due = if rate > 0.0 {
            start + Duration::from_secs_f64(g as f64 / rate)
        } else {
            start
        };
        if let Some(deadline) = send_deadline {
            if due >= deadline {
                break;
            }
        }
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let id = g + 1;
        let idx = (g as usize) % templates.len();
        let line = format!("{{\"op\":\"schedule\",\"id\":{id}{}\n", templates[idx]);
        let sent_at = Instant::now();
        let measured = sent_at >= measure_start;
        in_flight
            .lock()
            .expect("in-flight lock")
            .insert(id, (sent_at, measured));
        if writer.write_all(line.as_bytes()).is_err() {
            in_flight.lock().expect("in-flight lock").remove(&id);
            break; // server gone
        }
        if measured {
            sent += 1;
        } else {
            warmup_sent += 1;
        }
    }
    sent_done.store(1, Ordering::SeqCst);

    let mut tally = receiver
        .join()
        .map_err(|_| "loadgen receiver thread panicked".to_string())?;
    tally.warmup_sent = warmup_sent;
    tally.sent = sent;
    // Whatever is still in flight after both threads stopped —
    // receiver drain deadline, server-closed stream, read error —
    // never got an answer. Only measured requests count: warmup
    // traffic is excluded from every reported field.
    tally.unanswered = in_flight
        .lock()
        .expect("in-flight lock")
        .values()
        .filter(|&&(_, measured)| measured)
        .count() as u64;
    Ok(tally)
}

enum Outcome {
    Ok,
    Rejected,
    Timeout,
    Error,
}

/// The corpus length, recoverable from the expected-results table
/// (always non-empty: `run` rejects empty corpora).
fn expected_len_hint(expected: &[Option<(u64, String)>]) -> usize {
    expected.len().max(1)
}
