//! The end-to-end pipeline: application → task graph → schedule →
//! validation → simulated execution, with wall-clock scheduling time
//! measured the way the paper times algorithms (Figures 5(c)–8(c)).

use crate::application::Application;
use fastsched_algorithms::Scheduler;
use fastsched_dag::{Cost, Dag};
use fastsched_schedule::{validate, Schedule, ScheduleMetrics};
use fastsched_sim::{simulate, ExecutionReport, SimConfig};
use fastsched_workloads::TimingDatabase;
use std::time::{Duration, Instant};

/// Everything one pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Which algorithm produced the schedule.
    pub algorithm: &'static str,
    /// Task count of the generated DAG.
    pub nodes: usize,
    /// Edge count of the generated DAG.
    pub edges: usize,
    /// Communication-to-computation ratio of the DAG.
    pub ccr: f64,
    /// Static schedule quality metrics.
    pub metrics: ScheduleMetrics,
    /// Measured execution on the simulated machine.
    pub execution: ExecutionReport,
    /// Wall-clock time the scheduling algorithm took.
    pub scheduling_time: Duration,
    /// The schedule itself (for Gantt rendering).
    pub schedule: Schedule,
}

impl PipelineReport {
    /// The paper's headline number: simulated application execution
    /// time.
    pub fn execution_time(&self) -> Cost {
        self.execution.execution_time
    }
}

/// Run one algorithm over an already-generated DAG.
pub fn run_on_dag(
    dag: &Dag,
    scheduler: &dyn Scheduler,
    num_procs: u32,
    sim: &SimConfig,
) -> PipelineReport {
    let t0 = Instant::now();
    let schedule = scheduler.schedule(dag, num_procs);
    let scheduling_time = t0.elapsed();
    validate(dag, &schedule)
        .unwrap_or_else(|e| panic!("{} produced an invalid schedule: {e}", scheduler.name()));
    let metrics = ScheduleMetrics::compute(dag, &schedule);
    let execution = simulate(dag, &schedule, sim);
    PipelineReport {
        algorithm: scheduler.name(),
        nodes: dag.node_count(),
        edges: dag.edge_count(),
        ccr: dag.ccr(),
        metrics,
        execution,
        scheduling_time,
        schedule,
    }
}

/// Full pipeline from an [`Application`] description.
pub fn run_pipeline(
    app: Application,
    db: &TimingDatabase,
    scheduler: &dyn Scheduler,
    num_procs: u32,
    sim: &SimConfig,
) -> PipelineReport {
    let dag = app.generate(db);
    run_on_dag(&dag, scheduler, num_procs, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsched_algorithms::Fast;

    #[test]
    fn pipeline_produces_consistent_report() {
        let db = TimingDatabase::paragon();
        let app = Application::Gaussian { n: 4 };
        let r = run_pipeline(app, &db, &Fast::new(), 8, &SimConfig::default());
        assert_eq!(r.algorithm, "FAST");
        assert_eq!(r.nodes, 20);
        assert!(r.edges > 0);
        assert!(r.execution_time() >= r.metrics.makespan);
        assert_eq!(r.metrics.processors_used, r.execution.processors_used);
    }

    #[test]
    fn ideal_network_matches_predicted_makespan() {
        let db = TimingDatabase::paragon();
        let app = Application::Fft { points: 16 };
        let r = run_pipeline(app, &db, &Fast::new(), 8, &SimConfig::ideal());
        assert_eq!(r.execution_time(), r.metrics.makespan);
    }
}
