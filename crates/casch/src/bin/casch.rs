//! `casch` — the command-line front end of the CASCH-substitute
//! pipeline.
//!
//! ```text
//! casch generate --app gauss --size 8 --out dag.json
//! casch info     --dag dag.json
//! casch dot      --dag dag.json > dag.dot
//! casch schedule --dag dag.json --algo fast --procs 16 --gantt
//! casch compare  --app laplace --size 8 --procs 16
//! ```

use fastsched_algorithms::{
    paper_schedulers, BoundedDsc, BranchAndBound, Cpop, Dcp, Dls, Dsc, Etf, Ez, Fast, FastParallel,
    FastSa, Heft, Hlfet, Ish, Lc, Mcp, Md, Scheduler,
};
use fastsched_casch::{compare_algorithms, run_on_dag, Application};
use fastsched_dag::{io, Dag, GraphAttributes};
use fastsched_schedule::gantt;
use fastsched_sim::SimConfig;
use fastsched_workloads::TimingDatabase;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "dot" => cmd_dot(&opts),
        "schedule" => cmd_schedule(&opts),
        "simulate" => cmd_simulate(&opts),
        "compare" => cmd_compare(&opts),
        "trace" => cmd_trace(&opts),
        _ => Err(format!("unknown command `{cmd}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
casch — CASCH-substitute scheduling pipeline

USAGE:
  casch generate --app <gauss|laplace|fft|random|random-sparse|cholesky|systolic> --size <n> [--seed <s>] [--out <file>]
  casch info     --dag <file.json>
  casch dot      --dag <file.json>
  casch schedule --dag <file.json> --algo <name> [--procs <p>] [--gantt]
                 [--svg <out.svg>] [--out-schedule <out.json>] [--trace <out.ndjson>]
  casch simulate --dag <file.json> --schedule <sched.json>
                 [--topology <mesh|torus|hypercube|full>] [--hop <us>]
                 [--send-overhead <us>] [--recv-overhead <us>] [--trace <out.json>]
  casch compare  (--dag <file.json> | --app <name> --size <n>) [--procs <p>] [--seed <s>] [--all]
  casch trace    --in <trace.ndjson>

`casch schedule --trace` records the search (phase timers, probe
counters, schedule-length trajectory) as NDJSON; build with
`--features trace` or the file only carries metadata. `casch trace`
renders such a file as a human-readable report.

ALGORITHMS: fast, dsc, md, etf, dls, hlfet, mcp, heft, dcp, ish, ez, lc,
            cpop, dsc-llb, fast-ms, fast-sa, bnb (exhaustive, tiny graphs)";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // Boolean flags take no value.
        if matches!(key, "gantt" | "all") {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        out.insert(key.to_string(), val.clone());
    }
    Ok(out)
}

fn get_usize(opts: &Flags, key: &str) -> Result<usize, String> {
    opts.get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse()
        .map_err(|_| format!("--{key} must be a number"))
}

fn get_u64_or(opts: &Flags, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
    }
}

fn load_app(opts: &Flags) -> Result<Application, String> {
    let name = opts.get("app").ok_or("missing --app")?;
    let size = get_usize(opts, "size")?;
    let seed = get_u64_or(opts, "seed", 1)?;
    Application::from_cli(name, size, seed).ok_or_else(|| format!("unknown app `{name}`"))
}

fn load_dag(opts: &Flags) -> Result<Dag, String> {
    let path = opts.get("dag").ok_or("missing --dag")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".tg") {
        fastsched_dag::io_text::from_text(&text).map_err(|e| e.to_string())
    } else {
        io::from_json(&text).map_err(|e| e.to_string())
    }
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "fast" => Box::new(Fast::new()),
        "dsc" => Box::new(Dsc::new()),
        "md" => Box::new(Md::new()),
        "etf" => Box::new(Etf::new()),
        "dls" => Box::new(Dls::new()),
        "hlfet" => Box::new(Hlfet::new()),
        "mcp" => Box::new(Mcp::new()),
        "heft" => Box::new(Heft::new()),
        "fast-ms" => Box::new(FastParallel::new()),
        "fast-sa" => Box::new(FastSa::new()),
        "dcp" => Box::new(Dcp::new()),
        "ish" => Box::new(Ish::new()),
        "ez" => Box::new(Ez::new()),
        "lc" => Box::new(Lc::new()),
        "cpop" => Box::new(Cpop::new()),
        "dsc-llb" => Box::new(BoundedDsc::new()),
        "bnb" => Box::new(BranchAndBound::new()),
        _ => return Err(format!("unknown algorithm `{name}`")),
    })
}

fn cmd_generate(opts: &Flags) -> Result<(), String> {
    let app = load_app(opts)?;
    let dag = app.generate(&TimingDatabase::paragon());
    let json = io::to_json(&dag).map_err(|e| e.to_string())?;
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {app}: {} nodes, {} edges",
                dag.node_count(),
                dag.edge_count()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_info(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    let attrs = GraphAttributes::compute(&dag);
    let stats = fastsched_dag::DagStats::compute(&dag);
    println!("nodes:        {}", stats.nodes);
    println!("edges:        {}", stats.edges);
    println!("avg degree:   {:.2}", stats.avg_degree);
    println!(
        "max in/out:   {} / {}",
        stats.max_in_degree, stats.max_out_degree
    );
    println!("entries:      {}", stats.entries);
    println!("exits:        {}", stats.exits);
    println!("height:       {}", stats.height);
    println!("max width:    {}", stats.max_level_width);
    println!("CCR:          {:.3}", stats.ccr);
    println!("CP length:    {}", stats.cp_length);
    println!("CP nodes:     {}", attrs.cpn.iter().filter(|&&c| c).count());
    println!("total work:   {}", stats.total_computation);
    println!("total comm:   {}", dag.total_communication());
    println!("parallelism:  {:.2}", stats.parallelism);
    Ok(())
}

fn cmd_dot(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    print!("{}", io::to_dot(&dag));
    Ok(())
}

fn cmd_schedule(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    let algo = scheduler_by_name(opts.get("algo").ok_or("missing --algo")?)?;
    let procs = get_u64_or(opts, "procs", dag.node_count() as u64)? as u32;
    let report = run_on_dag(&dag, algo.as_ref(), procs, &SimConfig::default());
    println!("algorithm:        {}", report.algorithm);
    println!("schedule length:  {}", report.metrics.makespan);
    println!("execution (sim):  {}", report.execution.execution_time);
    println!("processors used:  {}", report.metrics.processors_used);
    println!("speedup:          {:.2}", report.metrics.speedup);
    println!("remote comm:      {}", report.metrics.remote_communication);
    println!("contention delay: {}", report.execution.contention_delay);
    println!("scheduling time:  {:?}", report.scheduling_time);
    if opts.contains_key("gantt") {
        println!("\n{}", gantt::render_bars(&dag, &report.schedule, 72));
    }
    if let Some(path) = opts.get("svg") {
        let svg = fastsched_schedule::svg::render_svg(
            &dag,
            &report.schedule,
            &fastsched_schedule::svg::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.get("out-schedule") {
        std::fs::write(path, fastsched_schedule::io::to_json(&report.schedule))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.get("trace") {
        let mut trace = fastsched_trace::SearchTrace::default();
        if !trace.is_enabled() {
            eprintln!(
                "warning: built without the `trace` feature; \
                 {path} will carry metadata only"
            );
        }
        trace.set_meta("tool", "casch schedule");
        trace.set_meta("algorithm", algo.name());
        trace.set_meta("nodes", &dag.node_count().to_string());
        trace.set_meta("procs", &procs.to_string());
        algo.schedule_traced(&dag, procs, &mut trace);
        std::fs::write(path, trace.to_report().to_ndjson())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote search trace to {path}");
    }
    Ok(())
}

fn cmd_trace(opts: &Flags) -> Result<(), String> {
    let path = opts.get("in").ok_or("missing --in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = fastsched_trace::Report::from_ndjson(&text).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}

fn cmd_simulate(opts: &Flags) -> Result<(), String> {
    use fastsched_sim::topology::Topology;
    let dag = load_dag(opts)?;
    let sched_path = opts.get("schedule").ok_or("missing --schedule")?;
    let text =
        std::fs::read_to_string(sched_path).map_err(|e| format!("reading {sched_path}: {e}"))?;
    let schedule =
        fastsched_schedule::io::from_json(&text, dag.node_count()).map_err(|e| e.to_string())?;
    fastsched_schedule::validate(&dag, &schedule).map_err(|e| e.to_string())?;

    let procs = schedule.processors_used();
    let topology = match opts.get("topology").map(String::as_str) {
        None | Some("mesh") => Some(Topology::mesh_for(procs)),
        Some("full") => Some(Topology::FullyConnected),
        Some("torus") => {
            let w = (procs as f64).sqrt().ceil() as u32;
            Some(Topology::Torus2D {
                width: w,
                height: procs.div_ceil(w),
            })
        }
        Some("hypercube") => {
            let dim = 32 - procs.next_power_of_two().leading_zeros() - 1;
            Some(Topology::Hypercube { dim: dim.max(1) })
        }
        Some(other) => return Err(format!("unknown topology `{other}`")),
    };
    let config = SimConfig {
        topology,
        hop_latency_us: get_u64_or(opts, "hop", 2)?,
        send_overhead_us: get_u64_or(opts, "send-overhead", 0)?,
        recv_overhead_us: get_u64_or(opts, "recv-overhead", 0)?,
        trace: opts.contains_key("trace"),
        ..SimConfig::default()
    };
    let report = fastsched_sim::simulate(&dag, &schedule, &config);
    if let Some(path) = opts.get("trace") {
        let json = serde_json::to_string_pretty(&report.trace).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} events to {path}", report.trace.len());
    }
    println!("predicted makespan: {}", report.predicted_makespan);
    println!("measured execution: {}", report.execution_time);
    println!("slowdown:           {:.3}", report.slowdown_vs_prediction());
    println!("processors used:    {}", report.processors_used);
    println!("remote messages:    {}", report.messages);
    println!("contention delay:   {}", report.contention_delay);
    println!("utilization:        {:.3}", report.utilization());
    Ok(())
}

fn cmd_compare(opts: &Flags) -> Result<(), String> {
    let db = TimingDatabase::paragon();
    let seed = get_u64_or(opts, "seed", 1)?;
    let schedulers: Vec<Box<dyn Scheduler>> = if opts.contains_key("all") {
        fastsched_algorithms::all_schedulers(seed)
    } else {
        paper_schedulers(seed)
    };
    let (app, default_procs) = if opts.contains_key("dag") {
        let dag = load_dag(opts)?;
        // Wrap a pre-built DAG by scheduling it directly.
        let procs = get_u64_or(opts, "procs", dag.node_count() as u64)? as u32;
        let sim = SimConfig::default();
        println!(
            "workload from --dag (v = {}, e = {})",
            dag.node_count(),
            dag.edge_count()
        );
        println!(
            "{:<8} {:>12} {:>10} {:>12} {:>8} {:>14}",
            "algo", "exec(us)", "norm", "makespan", "procs", "sched time"
        );
        let mut reference = None;
        for s in &schedulers {
            let r = run_on_dag(&dag, s.as_ref(), procs, &sim);
            let base = *reference.get_or_insert(r.execution.execution_time.max(1));
            println!(
                "{:<8} {:>12} {:>10.2} {:>12} {:>8} {:>14?}",
                r.algorithm,
                r.execution.execution_time,
                r.execution.execution_time as f64 / base as f64,
                r.metrics.makespan,
                r.metrics.processors_used,
                r.scheduling_time
            );
        }
        return Ok(());
    } else {
        let app = load_app(opts)?;
        let v = app.generate(&db).node_count();
        (app, v as u64)
    };
    let procs = get_u64_or(opts, "procs", default_procs)? as u32;
    let table = compare_algorithms(app, &db, &schedulers, procs, &SimConfig::default());
    print!("{}", table.render());
    Ok(())
}
