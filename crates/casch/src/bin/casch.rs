//! `casch` — the command-line front end of the CASCH-substitute
//! pipeline.
//!
//! ```text
//! casch generate --app gauss --size 8 --out dag.json
//! casch info     --dag dag.json
//! casch dot      --dag dag.json > dag.dot
//! casch schedule --dag dag.json --algo fast --procs 16 --gantt
//! casch compare  --app laplace --size 8 --procs 16
//! ```

use fastsched_algorithms::{paper_schedulers, Scheduler};
use fastsched_casch::protocol::{self, json_escape, Request};
use fastsched_casch::serve::{scheduler_by_name, ModelScheduler};
use fastsched_casch::{compare_algorithms, run_on_dag, Application};
use fastsched_dag::{io, Dag, GraphAttributes};
use fastsched_schedule::{gantt, CommModel, MemCapsSpec, MemoryCapacities, Schedule};
use fastsched_sim::SimConfig;
use fastsched_workloads::TimingDatabase;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "dot" => cmd_dot(&opts),
        "schedule" => cmd_schedule(&opts),
        "batch" => cmd_batch(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "simulate" => cmd_simulate(&opts),
        "verify" => cmd_verify(&opts),
        "compare" => cmd_compare(&opts),
        "trace" => cmd_trace(&opts),
        "explain" => cmd_explain(&opts),
        "diff" => cmd_diff(&opts),
        _ => Err(format!("unknown command `{cmd}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
casch — CASCH-substitute scheduling pipeline

USAGE:
  casch generate --app <gauss|laplace|fft|random|random-sparse|cholesky|systolic> --size <n> [--seed <s>] [--out <file>]
  casch info     --dag <file.json>
  casch dot      --dag <file.json>
  casch schedule --dag <file.json> --algo <name> [--procs <p>]
                 [--comm <spec>] [--mem-caps <spec>]
                 [--gantt] [--gantt-width <cols>]
                 [--svg <out.svg>] [--out-schedule <out.json>]
                 [--trace <out.ndjson>] [--perfetto <out.json>]
  casch batch    (--dir <dir> | --manifest <list.txt>) --algo <name>
                 [--procs <p>] [--threads <t>] [--comm <spec>]
                 [--mem-caps <spec>] [--out <out.ndjson>]
  casch serve    [--addr <host:port>] [--threads <t>] [--queue-depth <n>]
                 [--timeout-ms <ms>] [--max-line-bytes <n>] [--max-procs <p>]
                 [--max-groups <n>] [--metrics-addr <host:port>] [--no-metrics]
                 [--access-log <file.ndjson>] [--log-sample-rate <n>]
  casch loadgen  (--dir <dir> | --manifest <list.txt> | --dag <file>)
                 [--addr <host:port>] [--algo <name>] [--procs <p>]
                 [--rate <req/s>] [--total <n>] [--duration <s>]
                 [--warmup <s>] [--conns <c>] [--timeout-ms <ms>]
                 [--check] [--stats] [--shutdown]
                 [--metrics-addr <host:port>] [--metrics-out <file>]
  casch simulate --dag <file.json> --schedule <sched.json>
                 [--topology <mesh|torus|hypercube|hier:<g>|full>] [--hop <us>]
                 [--send-overhead <us>] [--recv-overhead <us>]
                 [--trace <out.json>] [--out-report <out.json>]
                 [--perfetto <out.json>]
  casch verify   --dag <file.json> --schedule <sched.json>
                 [--speeds <pct,pct,...>] [--comm <spec>]
                 [--mem-caps <spec>] [--report <report.json>]
  casch compare  (--dag <file.json> | --app <name> --size <n>) [--procs <p>] [--seed <s>] [--all]
  casch trace    --in <trace.ndjson>
  casch explain  (--in <trace.ndjson> | --dag <file.json> --algo <name> [--procs <p>])
                 [--node <id>]
  casch diff     --a <file> --b <file> [--dag <file.json>]

`casch schedule --trace` records the search (phase timers, probe
counters, placement provenance, schedule-length trajectory) as NDJSON;
build with `--features trace` or the file only carries metadata.
`casch trace` renders such a file as a human-readable report and
`casch explain --node <id>` answers \"why is this node where it is?\"
from the same provenance (candidate processors probed, their
ready/data-arrival/start times, the winning reason, and every
local-search transfer that touched the node).

`casch batch` schedules every DAG file in a directory (`*.json` and
`*.tg`, sorted by name) or listed in a manifest (one path per line,
`#` comments allowed) with one algorithm. `--threads <t>` shards the
batch across t worker threads (0 = all cores; default 1), each with
its own warm scheduling workspace — schedules are byte-identical at
every thread count. It emits one NDJSON object per DAG —
`{\"dag\",\"nodes\",\"edges\",\"algo\",\"procs\",\"threads\",\"makespan\",
\"seconds\"}` — followed by one aggregate summary line
`{\"summary\":true,\"dags\",\"rejected\",\"algo\",\"threads\",\"seconds\",
\"dags_per_sec\"}`, to stdout or `--out`. A file that fails to read or
parse no longer aborts the batch: it gets its own
`{\"dag\",\"rejected\":true,\"error\"}` row and is counted in the
summary's `rejected` field. Without `--procs` each DAG gets as many
processors as it has nodes.

`casch serve` runs a persistent NDJSON-over-TCP scheduling service:
one JSON request per line (`{\"op\":\"schedule\",\"id\",\"algo\",
[\"procs\"],[\"speeds\"],[\"mem_caps\"],[\"timeout_ms\"],\"dag\"}` plus `op:\"stats\"`
and `op:\"shutdown\"`), one JSON response per line, correlated by id
and possibly out of order. Requests shard across `--threads` workers
(0 = all cores) each owning a pinned warm workspace; a full
`--queue-depth` admission queue answers `overloaded` instead of
buffering, `--timeout-ms` bounds queue wait (per-request `timeout_ms`
overrides), a request's `procs` / `speeds` length is capped at
max(node count, `--max-procs`) so one line cannot demand unbounded
scratch, and SIGINT or `op:\"shutdown\"` drains in-flight work
before exiting. `--metrics-addr` serves a Prometheus text exposition
at `GET /metrics` (and the `op:\"stats\"` JSON at `/metrics.json`)
from a dedicated thread — never a pool worker — with per-phase
queue/schedule/serialize/write latency histograms; `--no-metrics`
turns request timing off entirely, `--access-log <file>` appends one
NDJSON line per completed/rejected/timed-out request, and
`--log-sample-rate <n>` keeps every n-th line (default 1 = all).

`casch loadgen` drives a running server open-loop: requests from a
DAG corpus at `--rate` req/s (0 = unpaced, the saturation probe) over
`--conns` connections for `--total` requests or `--duration` seconds
after `--warmup` seconds, then prints a `{\"summary\":true,...}` line
with achieved throughput and p50/p99/p999 latency. `--check` verifies
every response byte-for-byte against a local `schedule_into` run
(nonzero exit on any mismatch); `--stats` and `--shutdown` afterwards
fetch the server's counters / stop it gracefully. `--metrics-addr`
scrapes the server's `/metrics` page mid-run (a hard error if the
scrape fails) and prints it to stderr or `--metrics-out <file>`.

`--comm <spec>` prices communication through an explicit cost model
(DESIGN.md §16); only the model-aware algorithms accept it (fast,
etf, dls, heft). Specs: `ideal` (the paper's network),
`alpha-beta:A,BN,BD` (a remote message of weight c costs
A + ceil(c*BN/BD)), or `hier:S1+S2+...@A,BN,BD@A,BN,BD` (consecutive
group sizes, then the intra-group and inter-group tiers; the
processor count is fixed to the group table's size). `casch verify
--comm` checks a saved schedule under the same pricing, and `casch
simulate --topology hier:<g>` is the simulator's matching
leader-routed shape (groups of g processors).

`--mem-caps <spec>` bounds each processor's memory (DESIGN.md §17): a
placement is only legal while the footprints (`mem` field on DAG
nodes, default 0) resident on the processor sum to at most its
capacity. Specs: `uniform:C` (every processor holds C) or `C1,C2,...`
(per-processor capacities; fixes the processor count, like a hier
group table). Only the memory-aware algorithms accept it (fast,
heft); it composes with `--comm`, works on `schedule` and `batch`
(threaded batches stay byte-identical), and `casch verify --mem-caps`
re-checks a saved schedule against the same budgets, reporting the
first over-capacity processor as `INVALID: capacity`.

`casch verify` runs the structural validator over a saved schedule:
task count, processor bounds, durations under the cost model
(`--speeds` switches to the heterogeneous model, percent of nominal),
communication-delayed precedence, and per-processor overlap. It prints
`OK` with the makespan or `INVALID:` with the first violation and a
nonzero exit; `--report` additionally cross-checks a simulator report
saved with `--out-report` against the schedule.

`--perfetto` writes a Chrome-trace-event JSON timeline — per-processor
tracks, message flow arrows, and (from `casch simulate`, which records
an event log for it) per-link occupancy counters — loadable at
https://ui.perfetto.dev. `casch diff` compares two schedule JSON files
(needs --dag for node names) or two simulator reports saved with
`--out-report`, and localizes where they diverge.

ALGORITHMS: fast, dsc, md, etf, dls, hlfet, mcp, heft, dcp, ish, ez, lc,
            cpop, dsc-llb, fast-ms, fast-sa, bnb (exhaustive, tiny graphs)";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // Boolean flags take no value.
        if matches!(
            key,
            "gantt" | "all" | "check" | "stats" | "shutdown" | "no-metrics"
        ) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        out.insert(key.to_string(), val.clone());
    }
    Ok(out)
}

fn get_usize(opts: &Flags, key: &str) -> Result<usize, String> {
    opts.get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse()
        .map_err(|_| format!("--{key} must be a number"))
}

fn get_u64_or(opts: &Flags, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
    }
}

fn get_f64_or(opts: &Flags, key: &str, default: f64) -> Result<f64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
    }
}

fn load_app(opts: &Flags) -> Result<Application, String> {
    let name = opts.get("app").ok_or("missing --app")?;
    let size = get_usize(opts, "size")?;
    let seed = get_u64_or(opts, "seed", 1)?;
    Application::from_cli(name, size, seed).ok_or_else(|| format!("unknown app `{name}`"))
}

fn load_dag(opts: &Flags) -> Result<Dag, String> {
    let path = opts.get("dag").ok_or("missing --dag")?;
    load_dag_file(std::path::Path::new(path))
}

/// Load one DAG file, `.tg` text or `.json`.
fn load_dag_file(path: &std::path::Path) -> Result<Dag, String> {
    let display = path.display();
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {display}: {e}"))?;
    if path.extension().and_then(|x| x.to_str()) == Some("tg") {
        fastsched_dag::io_text::from_text(&text).map_err(|e| format!("{display}: {e}"))
    } else {
        io::from_json(&text).map_err(|e| format!("{display}: {e}"))
    }
}

/// Resolve the DAG file list shared by `batch` and `loadgen`: every
/// `*.json` / `*.tg` under `--dir` (sorted by name), or the paths
/// listed in `--manifest` (one per line, `#` comments allowed).
fn collect_dag_paths(opts: &Flags) -> Result<Vec<std::path::PathBuf>, String> {
    use std::path::PathBuf;
    let mut paths: Vec<PathBuf> = match (opts.get("dir"), opts.get("manifest")) {
        (Some(dir), None) => std::fs::read_dir(dir)
            .map_err(|e| format!("reading {dir}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|x| x.to_str()),
                    Some("json") | Some("tg")
                )
            })
            .collect(),
        (None, Some(manifest)) => {
            let text = std::fs::read_to_string(manifest)
                .map_err(|e| format!("reading {manifest}: {e}"))?;
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(PathBuf::from)
                .collect()
        }
        _ => return Err("needs exactly one of --dir or --manifest".to_string()),
    };
    paths.sort();
    if paths.is_empty() {
        return Err("no DAG files found (*.json or *.tg)".to_string());
    }
    Ok(paths)
}

fn cmd_generate(opts: &Flags) -> Result<(), String> {
    let app = load_app(opts)?;
    let dag = app.generate(&TimingDatabase::paragon());
    let json = io::to_json(&dag).map_err(|e| e.to_string())?;
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {app}: {} nodes, {} edges",
                dag.node_count(),
                dag.edge_count()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_info(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    let attrs = GraphAttributes::compute(&dag);
    let stats = fastsched_dag::DagStats::compute(&dag);
    println!("nodes:        {}", stats.nodes);
    println!("edges:        {}", stats.edges);
    println!("avg degree:   {:.2}", stats.avg_degree);
    println!(
        "max in/out:   {} / {}",
        stats.max_in_degree, stats.max_out_degree
    );
    println!("entries:      {}", stats.entries);
    println!("exits:        {}", stats.exits);
    println!("height:       {}", stats.height);
    println!("max width:    {}", stats.max_level_width);
    println!("CCR:          {:.3}", stats.ccr);
    println!("CP length:    {}", stats.cp_length);
    println!("CP nodes:     {}", attrs.cpn.iter().filter(|&&c| c).count());
    println!("total work:   {}", stats.total_computation);
    println!("total comm:   {}", dag.total_communication());
    println!("parallelism:  {:.2}", stats.parallelism);
    Ok(())
}

fn cmd_dot(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    print!("{}", io::to_dot(&dag));
    Ok(())
}

/// Parse the `--comm` / `--mem-caps` model flags (absent `--comm`
/// prices like the paper's ideal network).
fn parse_model_flags(opts: &Flags) -> Result<(CommModel, Option<MemCapsSpec>), String> {
    let comm = match opts.get("comm") {
        Some(spec) => CommModel::parse_spec(spec).map_err(|e| format!("--comm: {e}"))?,
        None => CommModel::Ideal,
    };
    let mem = match opts.get("mem-caps") {
        // Parse errors already lead with `mem-caps: `.
        Some(spec) => Some(MemCapsSpec::parse(spec).map_err(|e| format!("--{e}"))?),
        None => None,
    };
    if mem.is_some() {
        let algo = opts.get("algo").ok_or("missing --algo")?;
        if !ModelScheduler::by_name(algo).is_ok_and(|s| s.is_memory_aware()) {
            return Err(format!(
                "--mem-caps: algorithm `{algo}` has no memory-aware path (use fast or heft)"
            ));
        }
    }
    Ok((comm, mem))
}

/// Reconcile `--procs` with the model flags: a hier group table and a
/// per-processor `--mem-caps` table each fix the processor count, so
/// they must agree with each other and with an explicit `--procs`.
fn resolve_model_procs(
    opts: &Flags,
    comm: &CommModel,
    mem: Option<&MemCapsSpec>,
    default_procs: u64,
) -> Result<u32, String> {
    let hier = comm.required_procs();
    let caps = mem.and_then(MemCapsSpec::required_procs);
    if let (Some(h), Some(n)) = (hier, caps) {
        if h != n {
            return Err(format!(
                "--mem-caps lists {n} capacities but the hier group table covers \
                 {h} processor(s)"
            ));
        }
    }
    match hier.or(caps) {
        Some(n) => {
            let p = get_u64_or(opts, "procs", u64::from(n))?;
            if p != u64::from(n) {
                let what = if hier.is_some() {
                    "hier group table"
                } else {
                    "--mem-caps table"
                };
                return Err(format!(
                    "--procs {p} disagrees with the {what} ({n} processor(s))"
                ));
            }
            Ok(n)
        }
        None => Ok(get_u64_or(opts, "procs", default_procs)? as u32),
    }
}

/// Run one DAG through the model-aware path, wrapping the comm model
/// in a capacity table when `--mem-caps` was given.
fn schedule_with_flags(
    algo: &ModelScheduler,
    dag: &Dag,
    procs: u32,
    comm: &CommModel,
    mem: Option<&MemCapsSpec>,
) -> Schedule {
    match mem {
        Some(spec) => {
            let model = MemoryCapacities::new(comm.clone(), spec.resolve(procs));
            algo.schedule_with_model(dag, procs, &model)
        }
        None => algo.schedule_with_model(dag, procs, comm),
    }
}

/// `casch schedule --comm` / `--mem-caps`: the model-aware scheduling
/// path. No simulator run (the simulator has its own topology
/// pricing) and no `--trace` (the generic path records no
/// provenance).
fn cmd_schedule_model(opts: &Flags, dag: &Dag) -> Result<(), String> {
    let algo = ModelScheduler::by_name(opts.get("algo").ok_or("missing --algo")?)?;
    let (comm, mem) = parse_model_flags(opts)?;
    let procs = resolve_model_procs(opts, &comm, mem.as_ref(), dag.node_count() as u64)?;
    if opts.contains_key("trace") {
        return Err("--trace is not supported together with --comm/--mem-caps".to_string());
    }
    let t0 = std::time::Instant::now();
    let schedule = schedule_with_flags(&algo, dag, procs, &comm, mem.as_ref());
    let elapsed = t0.elapsed();
    println!("algorithm:        {}", algo.name());
    if let Some(spec) = opts.get("comm") {
        println!("comm model:       {spec}");
    }
    if let Some(spec) = opts.get("mem-caps") {
        println!("mem caps:         {spec}");
    }
    println!("schedule length:  {}", schedule.makespan());
    println!("processors used:  {}", schedule.processors_used());
    println!("scheduling time:  {elapsed:?}");
    if opts.contains_key("gantt") {
        let width = get_u64_or(opts, "gantt-width", 72)?.clamp(20, 512) as usize;
        println!("\n{}", gantt::render_bars(dag, &schedule, width));
    } else if opts.contains_key("gantt-width") {
        return Err("--gantt-width only makes sense together with --gantt".to_string());
    }
    if let Some(path) = opts.get("perfetto") {
        let json = fastsched_schedule::export::chrome_trace(dag, &schedule);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Perfetto timeline to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(path) = opts.get("svg") {
        let svg = fastsched_schedule::svg::render_svg(
            dag,
            &schedule,
            &fastsched_schedule::svg::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.get("out-schedule") {
        std::fs::write(path, fastsched_schedule::io::to_json(&schedule))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_schedule(opts: &Flags) -> Result<(), String> {
    let dag = load_dag(opts)?;
    if opts.contains_key("comm") || opts.contains_key("mem-caps") {
        return cmd_schedule_model(opts, &dag);
    }
    let algo = scheduler_by_name(opts.get("algo").ok_or("missing --algo")?)?;
    let procs = get_u64_or(opts, "procs", dag.node_count() as u64)? as u32;
    let report = run_on_dag(&dag, algo.as_ref(), procs, &SimConfig::default());
    println!("algorithm:        {}", report.algorithm);
    println!("schedule length:  {}", report.metrics.makespan);
    println!("execution (sim):  {}", report.execution.execution_time);
    println!("processors used:  {}", report.metrics.processors_used);
    println!("speedup:          {:.2}", report.metrics.speedup);
    println!("remote comm:      {}", report.metrics.remote_communication);
    println!("contention delay: {}", report.execution.contention_delay);
    println!("scheduling time:  {:?}", report.scheduling_time);
    if opts.contains_key("gantt") {
        // Clamp to keep the time axis legible: below ~20 columns every
        // bar rounds to nothing, above 512 lines wrap everywhere.
        let width = get_u64_or(opts, "gantt-width", 72)?.clamp(20, 512) as usize;
        println!("\n{}", gantt::render_bars(&dag, &report.schedule, width));
    } else if opts.contains_key("gantt-width") {
        return Err("--gantt-width only makes sense together with --gantt".to_string());
    }
    if let Some(path) = opts.get("perfetto") {
        let json = fastsched_schedule::export::chrome_trace(&dag, &report.schedule);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Perfetto timeline to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(path) = opts.get("svg") {
        let svg = fastsched_schedule::svg::render_svg(
            &dag,
            &report.schedule,
            &fastsched_schedule::svg::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.get("out-schedule") {
        std::fs::write(path, fastsched_schedule::io::to_json(&report.schedule))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = opts.get("trace") {
        let mut trace = fastsched_trace::SearchTrace::default();
        if !trace.is_enabled() {
            eprintln!(
                "warning: built without the `trace` feature; \
                 {path} will carry metadata only"
            );
        }
        trace.set_meta("tool", "casch schedule");
        trace.set_meta("algorithm", algo.name());
        trace.set_meta("nodes", &dag.node_count().to_string());
        trace.set_meta("procs", &procs.to_string());
        algo.schedule_traced(&dag, procs, &mut trace);
        std::fs::write(path, trace.to_report().to_ndjson())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote search trace to {path}");
    }
    Ok(())
}

/// The batch pipeline: the CLI surface of `schedule_many_par_timed`.
/// All DAGs are loaded up front, then the batch is sharded across
/// `--threads` workers (one warm scheduling workspace each; the
/// default 1 runs the classic serial loop). Each result line carries
/// its own wall-clock cost and the closing summary line the aggregate
/// throughput, so the NDJSON doubles as a throughput record.
/// `casch batch --comm` / `--mem-caps`: the model-aware batch path.
/// Shards across `--threads` workers exactly like the homogeneous
/// batch (the model paths re-derive everything from the DAG and the
/// shared immutable model, so schedules stay byte-identical at every
/// thread count) and emits the same NDJSON shape.
fn cmd_batch_model(opts: &Flags) -> Result<(), String> {
    use fastsched_algorithms::schedule_many_par_by;

    let algo = ModelScheduler::by_name(opts.get("algo").ok_or("missing --algo")?)?;
    let (comm, mem) = parse_model_flags(opts)?;
    let threads = get_u64_or(opts, "threads", 1)? as usize;
    let paths = collect_dag_paths(opts).map_err(|e| format!("batch: {e}"))?;

    let mut dags: Vec<Dag> = Vec::with_capacity(paths.len());
    let mut procs: Vec<u32> = Vec::with_capacity(paths.len());
    let mut displays: Vec<String> = Vec::with_capacity(paths.len());
    let mut lines = String::new();
    let mut rejected: u64 = 0;
    for path in &paths {
        let display = path.display().to_string();
        let row = load_dag_file(path).and_then(|dag| {
            let p = resolve_model_procs(opts, &comm, mem.as_ref(), dag.node_count() as u64)?;
            Ok((dag, p))
        });
        match row {
            Ok((dag, p)) => {
                procs.push(p);
                dags.push(dag);
                displays.push(display);
            }
            Err(e) => {
                rejected += 1;
                lines.push_str(&format!(
                    "{{\"dag\":\"{}\",\"rejected\":true,\"error\":\"{}\"}}\n",
                    json_escape(&display),
                    json_escape(&e)
                ));
                eprintln!("warning: rejected {display}: {e}");
            }
        }
    }
    if dags.is_empty() {
        return Err(format!(
            "batch: all {rejected} DAG file(s) were rejected; nothing to schedule"
        ));
    }

    let wall = std::time::Instant::now();
    let results = schedule_many_par_by(&dags, &procs, threads, |dag, np| {
        schedule_with_flags(&algo, dag, np, &comm, mem.as_ref())
    });
    let wall = wall.elapsed().as_secs_f64();

    for (i, (schedule, seconds)) in results.iter().enumerate() {
        lines.push_str(&format!(
            "{{\"dag\":\"{}\",\"nodes\":{},\"edges\":{},\"algo\":\"{}\",\
             \"procs\":{},\"threads\":{},\"makespan\":{},\"seconds\":{:.6}}}\n",
            json_escape(&displays[i]),
            dags[i].node_count(),
            dags[i].edge_count(),
            algo.name(),
            procs[i],
            threads,
            schedule.makespan(),
            seconds
        ));
    }
    lines.push_str(&format!(
        "{{\"summary\":true,\"dags\":{},\"rejected\":{rejected},\"algo\":\"{}\",\
         \"threads\":{},\"seconds\":{wall:.6},\"dags_per_sec\":{:.1}}}\n",
        dags.len(),
        algo.name(),
        threads,
        dags.len() as f64 / wall.max(1e-9)
    ));
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} result line(s) to {path}", paths.len());
        }
        None => print!("{lines}"),
    }
    Ok(())
}

fn cmd_batch(opts: &Flags) -> Result<(), String> {
    use fastsched_algorithms::schedule_many_par_timed;

    if opts.contains_key("comm") || opts.contains_key("mem-caps") {
        return cmd_batch_model(opts);
    }
    let algo = scheduler_by_name(opts.get("algo").ok_or("missing --algo")?)?;
    let threads = get_u64_or(opts, "threads", 1)? as usize;
    let paths = collect_dag_paths(opts).map_err(|e| format!("batch: {e}"))?;

    // Parse every DAG before scheduling starts, so workers only
    // compute. A file that fails to read or parse is reported as its
    // own `rejected` row instead of aborting the whole batch.
    let mut dags: Vec<Dag> = Vec::with_capacity(paths.len());
    let mut procs: Vec<u32> = Vec::with_capacity(paths.len());
    let mut displays: Vec<String> = Vec::with_capacity(paths.len());
    let mut lines = String::new();
    let mut rejected: u64 = 0;
    for path in &paths {
        let display = path.display().to_string();
        match load_dag_file(path) {
            Ok(dag) => {
                procs.push(get_u64_or(opts, "procs", dag.node_count() as u64)? as u32);
                dags.push(dag);
                displays.push(display);
            }
            Err(e) => {
                rejected += 1;
                lines.push_str(&format!(
                    "{{\"dag\":\"{}\",\"rejected\":true,\"error\":\"{}\"}}\n",
                    json_escape(&display),
                    json_escape(&e)
                ));
                eprintln!("warning: rejected {display}: {e}");
            }
        }
    }
    if dags.is_empty() {
        return Err(format!(
            "batch: all {rejected} DAG file(s) were rejected; nothing to schedule"
        ));
    }

    let wall = std::time::Instant::now();
    let results = schedule_many_par_timed(algo.as_ref(), &dags, &procs, threads);
    let wall = wall.elapsed().as_secs_f64();

    for (i, (schedule, seconds)) in results.iter().enumerate() {
        lines.push_str(&format!(
            "{{\"dag\":\"{}\",\"nodes\":{},\"edges\":{},\"algo\":\"{}\",\
             \"procs\":{},\"threads\":{},\"makespan\":{},\"seconds\":{:.6}}}\n",
            json_escape(&displays[i]),
            dags[i].node_count(),
            dags[i].edge_count(),
            algo.name(),
            procs[i],
            threads,
            schedule.makespan(),
            seconds
        ));
    }
    lines.push_str(&format!(
        "{{\"summary\":true,\"dags\":{},\"rejected\":{rejected},\"algo\":\"{}\",\
         \"threads\":{},\"seconds\":{:.6},\"dags_per_sec\":{:.1}}}\n",
        dags.len(),
        algo.name(),
        threads,
        wall,
        dags.len() as f64 / wall.max(1e-9)
    ));
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} result line(s) to {path}", paths.len());
        }
        None => print!("{lines}"),
    }
    Ok(())
}

/// The service front-end: see `casch serve` in the usage text and
/// DESIGN.md §14 for the protocol and architecture.
fn cmd_serve(opts: &Flags) -> Result<(), String> {
    use fastsched_casch::serve::{
        install_sigint_handler, ServeConfig, Server, DEFAULT_MAX_GROUPS, DEFAULT_MAX_PROCS,
    };
    let addr = opts
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4800");
    let config = ServeConfig {
        threads: get_u64_or(opts, "threads", 0)? as usize,
        queue_depth: get_u64_or(opts, "queue-depth", 1024)?.max(1) as usize,
        default_timeout_ms: get_u64_or(opts, "timeout-ms", 0)?,
        max_line_bytes: get_u64_or(opts, "max-line-bytes", protocol::DEFAULT_MAX_LINE as u64)?
            as usize,
        max_procs: get_u64_or(opts, "max-procs", DEFAULT_MAX_PROCS as u64)?
            .clamp(1, u32::MAX as u64) as u32,
        max_groups: get_u64_or(opts, "max-groups", DEFAULT_MAX_GROUPS as u64)?
            .clamp(1, u32::MAX as u64) as u32,
        metrics: !opts.contains_key("no-metrics"),
        metrics_addr: opts.get("metrics-addr").cloned(),
        access_log: opts.get("access-log").map(std::path::PathBuf::from),
        log_sample_rate: get_u64_or(opts, "log-sample-rate", 1)?.max(1),
    };
    install_sigint_handler();
    let server = Server::bind(addr, config.clone()).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("casch serve metrics on http://{maddr}/metrics (JSON at /metrics.json)");
    }
    eprintln!(
        "casch serve listening on {local} (threads {}, queue depth {}); \
         SIGINT or op:\"shutdown\" drains and exits",
        if config.threads == 0 {
            "= cores".to_string()
        } else {
            config.threads.to_string()
        },
        config.queue_depth
    );
    let summary = server.run().map_err(|e| e.to_string())?;
    eprintln!(
        "casch serve: {} connection(s); {} completed, {} rejected, \
         {} timeout(s), {} malformed line(s)",
        summary.connections,
        summary.completed,
        summary.rejected,
        summary.timeouts,
        summary.malformed
    );
    Ok(())
}

/// Open-loop load generator against a running `casch serve`.
fn cmd_loadgen(opts: &Flags) -> Result<(), String> {
    use fastsched_casch::loadgen::{self, CorpusItem, LoadgenConfig};
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:4800".to_string());
    let corpus: Vec<CorpusItem> = if opts.contains_key("dag") {
        let path = opts.get("dag").expect("checked");
        vec![CorpusItem {
            name: path.clone(),
            dag: load_dag(opts)?,
        }]
    } else {
        collect_dag_paths(opts)
            .map_err(|e| format!("loadgen: {e}"))?
            .iter()
            .map(|p| {
                Ok(CorpusItem {
                    name: p.display().to_string(),
                    dag: load_dag_file(p)?,
                })
            })
            .collect::<Result<_, String>>()?
    };
    let config = LoadgenConfig {
        addr: addr.clone(),
        corpus,
        algo: opts.get("algo").cloned().unwrap_or_else(|| "fast".into()),
        procs: match opts.get("procs") {
            None => None,
            Some(_) => Some(get_u64_or(opts, "procs", 0)? as u32),
        },
        rate: get_f64_or(opts, "rate", 0.0)?,
        total: match opts.get("total") {
            None => None,
            Some(_) => Some(get_u64_or(opts, "total", 0)?),
        },
        duration_s: get_f64_or(opts, "duration", 5.0)?,
        warmup_s: get_f64_or(opts, "warmup", 0.0)?,
        conns: get_u64_or(opts, "conns", 1)?.max(1) as usize,
        timeout_ms: match opts.get("timeout-ms") {
            None => None,
            Some(_) => Some(get_u64_or(opts, "timeout-ms", 0)?),
        },
        check: opts.contains_key("check"),
        connect_retry_s: get_f64_or(opts, "connect-retry", 5.0)?,
        metrics_addr: opts.get("metrics-addr").cloned(),
    };
    let report = loadgen::run(&config)?;
    println!("{}", report.to_json_line());
    if let Some(page) = &report.metrics_scrape {
        match opts.get("metrics-out") {
            Some(path) => {
                std::fs::write(path, page).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote mid-run /metrics scrape to {path}");
            }
            None => eprint!("{page}"),
        }
    }
    if opts.contains_key("stats") {
        println!(
            "{}",
            loadgen::request_once(&addr, &Request::Stats { id: 0 }, 5.0)?
        );
    }
    if opts.contains_key("shutdown") {
        println!(
            "{}",
            loadgen::request_once(&addr, &Request::Shutdown { id: 0 }, 5.0)?
        );
    }
    if report.mismatches > 0 {
        return Err(format!(
            "--check found {} response(s) diverging from schedule_into",
            report.mismatches
        ));
    }
    Ok(())
}

fn cmd_trace(opts: &Flags) -> Result<(), String> {
    let path = opts.get("in").ok_or("missing --in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = fastsched_trace::Report::from_ndjson(&text).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}

fn cmd_explain(opts: &Flags) -> Result<(), String> {
    let report = if let Some(path) = opts.get("in") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        fastsched_trace::Report::from_ndjson(&text).map_err(|e| e.to_string())?
    } else {
        let dag = load_dag(opts)?;
        let algo = scheduler_by_name(opts.get("algo").ok_or("missing --in or --dag/--algo")?)?;
        let procs = get_u64_or(opts, "procs", dag.node_count() as u64)? as u32;
        let mut trace = fastsched_trace::SearchTrace::default();
        if !trace.is_enabled() {
            eprintln!(
                "warning: built without the `trace` feature; no placement \
                 provenance is recorded (rebuild with --features trace)"
            );
        }
        algo.schedule_traced(&dag, procs, &mut trace);
        trace.to_report()
    };

    let Some(node) = opts.get("node") else {
        let placed = report.placed_nodes();
        println!(
            "trace holds placement provenance for {} node(s)",
            placed.len()
        );
        if !placed.is_empty() {
            println!("query one with: casch explain ... --node <id>");
        }
        return Ok(());
    };
    let node: u64 = node.parse().map_err(|_| "--node must be a number")?;

    let placements = report.placements_of(node);
    let transfers = report.transfers_of(node);
    if placements.is_empty() && transfers.is_empty() {
        return Err(format!(
            "no provenance for node {node} in this trace (wrong id, \
             or the trace was recorded without --features trace)"
        ));
    }
    for p in &placements {
        println!(
            "node {node} placed on P{} at t={} ({})",
            p.proc, p.start, p.reason
        );
        println!("  candidates probed:");
        for c in &p.candidates {
            println!(
                "    P{:<4} ready={:<8} dat={:<8} start={}{}",
                c.proc,
                c.ready,
                c.dat,
                c.start,
                if c.proc == p.proc { "  <- chosen" } else { "" }
            );
        }
    }
    if transfers.is_empty() {
        println!("no local-search transfers probed this node");
    } else {
        println!("local-search transfers:");
        for t in &transfers {
            println!(
                "  step {:<6} P{} -> P{}  makespan {}  {}",
                t.step,
                t.from,
                t.to,
                t.makespan,
                if t.accepted { "accepted" } else { "rejected" }
            );
        }
    }
    Ok(())
}

fn cmd_diff(opts: &Flags) -> Result<(), String> {
    let path_a = opts.get("a").ok_or("missing --a")?;
    let path_b = opts.get("b").ok_or("missing --b")?;
    let text_a = std::fs::read_to_string(path_a).map_err(|e| format!("reading {path_a}: {e}"))?;
    let text_b = std::fs::read_to_string(path_b).map_err(|e| format!("reading {path_b}: {e}"))?;
    // Sniff the payload kind: execution reports carry a measured
    // `execution_time`, schedule files a `tasks` table.
    let is_report = |t: &str| t.contains("\"execution_time\"");
    if is_report(&text_a) != is_report(&text_b) {
        return Err("cannot diff a schedule against an execution report".to_string());
    }
    if is_report(&text_a) {
        let a: fastsched_sim::ExecutionReport =
            serde_json::from_str(&text_a).map_err(|e| format!("{path_a}: {e}"))?;
        let b: fastsched_sim::ExecutionReport =
            serde_json::from_str(&text_b).map_err(|e| format!("{path_b}: {e}"))?;
        print!("{}", a.diff(&b)?.render());
    } else {
        let dag = load_dag(opts).map_err(|e| format!("{e} (schedule diffs need --dag)"))?;
        let a = fastsched_schedule::io::from_json(&text_a, dag.node_count())
            .map_err(|e| format!("{path_a}: {e}"))?;
        let b = fastsched_schedule::io::from_json(&text_b, dag.node_count())
            .map_err(|e| format!("{path_b}: {e}"))?;
        let d = fastsched_schedule::diff_schedules(&a, &b)?;
        print!("{}", d.render(&dag));
    }
    Ok(())
}

fn cmd_simulate(opts: &Flags) -> Result<(), String> {
    use fastsched_sim::topology::Topology;
    let dag = load_dag(opts)?;
    let sched_path = opts.get("schedule").ok_or("missing --schedule")?;
    let text =
        std::fs::read_to_string(sched_path).map_err(|e| format!("reading {sched_path}: {e}"))?;
    let schedule =
        fastsched_schedule::io::from_json(&text, dag.node_count()).map_err(|e| e.to_string())?;
    fastsched_schedule::validate(&dag, &schedule).map_err(|e| e.to_string())?;

    let procs = schedule.processors_used();
    let topology = match opts.get("topology").map(String::as_str) {
        None | Some("mesh") => Some(Topology::mesh_for(procs)),
        Some("full") => Some(Topology::FullyConnected),
        Some("torus") => {
            let w = (procs as f64).sqrt().ceil() as u32;
            Some(Topology::Torus2D {
                width: w,
                height: procs.div_ceil(w),
            })
        }
        Some("hypercube") => {
            let dim = 32 - procs.next_power_of_two().leading_zeros() - 1;
            Some(Topology::Hypercube { dim: dim.max(1) })
        }
        Some(spec) if spec.starts_with("hier") => {
            let group_size = spec
                .strip_prefix("hier:")
                .and_then(|g| g.trim().parse::<u32>().ok())
                .filter(|&g| g > 0)
                .ok_or_else(|| {
                    format!(
                        "--topology hier needs a positive group size, e.g. `hier:4`, got `{spec}`"
                    )
                })?;
            Some(Topology::Hierarchical { group_size })
        }
        Some(other) => return Err(format!("unknown topology `{other}`")),
    };
    // Reject the pairing here rather than letting the routing panic
    // mid-simulation on an out-of-topology processor.
    if let Some(t) = topology {
        if procs > t.capacity() {
            return Err(format!(
                "schedule uses {procs} processor(s) but the topology has only {} slot(s)",
                t.capacity()
            ));
        }
    }
    let config = SimConfig {
        topology,
        hop_latency_us: get_u64_or(opts, "hop", 2)?,
        send_overhead_us: get_u64_or(opts, "send-overhead", 0)?,
        recv_overhead_us: get_u64_or(opts, "recv-overhead", 0)?,
        // The Perfetto exporter renders the event log, so --perfetto
        // implies recording one.
        trace: opts.contains_key("trace") || opts.contains_key("perfetto"),
        ..SimConfig::default()
    };
    let report = fastsched_sim::simulate(&dag, &schedule, &config);
    if let Some(path) = opts.get("trace") {
        let json = serde_json::to_string_pretty(&report.trace).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} events to {path}", report.trace.len());
    }
    if let Some(path) = opts.get("perfetto") {
        let json = fastsched_sim::export::chrome_trace(&dag, &report);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Perfetto timeline to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(path) = opts.get("out-report") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote execution report to {path}");
    }
    println!("predicted makespan: {}", report.predicted_makespan);
    println!("measured execution: {}", report.execution_time);
    println!("slowdown:           {:.3}", report.slowdown_vs_prediction());
    println!("processors used:    {}", report.processors_used);
    println!("remote messages:    {}", report.messages);
    println!("contention delay:   {}", report.contention_delay);
    println!("utilization:        {:.3}", report.utilization());
    Ok(())
}

fn cmd_verify(opts: &Flags) -> Result<(), String> {
    use fastsched_schedule::{CostModel, HomogeneousModel, ProcessorSpeeds};
    let dag = load_dag(opts)?;
    let sched_path = opts.get("schedule").ok_or("missing --schedule")?;
    let text =
        std::fs::read_to_string(sched_path).map_err(|e| format!("reading {sched_path}: {e}"))?;
    let schedule = fastsched_schedule::io::from_json(&text, dag.node_count())
        .map_err(|e| format!("{sched_path}: {e}"))?;

    let mem = match opts.get("mem-caps") {
        // Parse errors already lead with `mem-caps: `.
        Some(spec) => Some(MemCapsSpec::parse(spec).map_err(|e| format!("--{e}"))?),
        None => None,
    };
    if let Some(MemCapsSpec::PerProc(caps)) = &mem {
        if (caps.len() as u32) < schedule.num_procs() {
            return Err(format!(
                "--mem-caps lists {} capacit(y/ies) but the schedule file declares {} \
                 processor(s)",
                caps.len(),
                schedule.num_procs()
            ));
        }
    }
    /// Validate under `model`, first wrapping it in a capacity table
    /// when `--mem-caps` was given.
    fn verdict_with<M: CostModel>(
        model: M,
        mem: Option<&MemCapsSpec>,
        dag: &Dag,
        schedule: &Schedule,
    ) -> Result<(), fastsched_schedule::ScheduleError> {
        match mem {
            Some(spec) => {
                let capped = MemoryCapacities::new(model, spec.resolve(schedule.num_procs()));
                fastsched_schedule::validate_with(&capped, dag, schedule)
            }
            None => fastsched_schedule::validate_with(&model, dag, schedule),
        }
    }

    let verdict = match (opts.get("speeds"), opts.get("comm")) {
        (Some(_), Some(_)) => {
            return Err("--speeds and --comm are mutually exclusive (pick one model)".to_string())
        }
        (Some(spec), None) => {
            let pcts: Vec<u32> = spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<u32>()
                        .ok()
                        .filter(|&p| p > 0)
                        .ok_or_else(|| {
                            format!("--speeds must be positive percentages, got `{spec}`")
                        })
                })
                .collect::<Result<_, _>>()?;
            let speeds = ProcessorSpeeds::try_new(pcts).map_err(|e| format!("--speeds: {e}"))?;
            if speeds.count() < schedule.num_procs() {
                return Err(format!(
                    "--speeds lists {} processor(s) but the schedule file declares {}",
                    speeds.count(),
                    schedule.num_procs()
                ));
            }
            println!("model: heterogeneous ({spec} % of nominal)");
            verdict_with(speeds, mem.as_ref(), &dag, &schedule)
        }
        (None, Some(spec)) => {
            let model = CommModel::parse_spec(spec).map_err(|e| format!("--comm: {e}"))?;
            if let Some(n) = model.required_procs() {
                if n < schedule.num_procs() {
                    return Err(format!(
                        "--comm hier covers {n} processor(s) but the schedule file declares {}",
                        schedule.num_procs()
                    ));
                }
            }
            println!("model: comm ({spec})");
            verdict_with(model, mem.as_ref(), &dag, &schedule)
        }
        (None, None) => {
            println!("model: homogeneous");
            verdict_with(HomogeneousModel, mem.as_ref(), &dag, &schedule)
        }
    };
    if let Some(spec) = opts.get("mem-caps") {
        println!("mem caps: {spec}");
    }
    if let Err(e) = verdict {
        println!("INVALID: {e}");
        // A failed verification is a verdict, not a usage error: exit
        // nonzero without the usage banner.
        std::process::exit(1);
    }
    println!(
        "OK: {} task(s) on {} processor(s), makespan {}",
        dag.node_count(),
        schedule.processors_used(),
        schedule.makespan()
    );

    if let Some(path) = opts.get("report") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let report: fastsched_sim::ExecutionReport =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut faults = Vec::new();
        if report.predicted_makespan != schedule.makespan() {
            faults.push(format!(
                "report predicts makespan {} but the schedule says {}",
                report.predicted_makespan,
                schedule.makespan()
            ));
        }
        if report.execution_time < report.predicted_makespan {
            faults.push(format!(
                "measured execution {} beats the abstract prediction {} — \
                 the network can only add time",
                report.execution_time, report.predicted_makespan
            ));
        }
        if report.processors_used != schedule.processors_used() {
            faults.push(format!(
                "report used {} processor(s), schedule uses {}",
                report.processors_used,
                schedule.processors_used()
            ));
        }
        if report.finish_times.len() != dag.node_count() {
            faults.push(format!(
                "report carries {} finish time(s) for {} task(s)",
                report.finish_times.len(),
                dag.node_count()
            ));
        }
        if !faults.is_empty() {
            for f in &faults {
                println!("INVALID: {f}");
            }
            std::process::exit(1);
        }
        println!("OK: report is consistent with the schedule");
    }
    Ok(())
}

fn cmd_compare(opts: &Flags) -> Result<(), String> {
    let db = TimingDatabase::paragon();
    let seed = get_u64_or(opts, "seed", 1)?;
    let schedulers: Vec<Box<dyn Scheduler>> = if opts.contains_key("all") {
        fastsched_algorithms::all_schedulers(seed)
    } else {
        paper_schedulers(seed)
    };
    let (app, default_procs) = if opts.contains_key("dag") {
        let dag = load_dag(opts)?;
        // Wrap a pre-built DAG by scheduling it directly.
        let procs = get_u64_or(opts, "procs", dag.node_count() as u64)? as u32;
        let sim = SimConfig::default();
        println!(
            "workload from --dag (v = {}, e = {})",
            dag.node_count(),
            dag.edge_count()
        );
        println!(
            "{:<8} {:>12} {:>10} {:>12} {:>8} {:>14}",
            "algo", "exec(us)", "norm", "makespan", "procs", "sched time"
        );
        let mut reference = None;
        for s in &schedulers {
            let r = run_on_dag(&dag, s.as_ref(), procs, &sim);
            let base = *reference.get_or_insert(r.execution.execution_time.max(1));
            println!(
                "{:<8} {:>12} {:>10.2} {:>12} {:>8} {:>14?}",
                r.algorithm,
                r.execution.execution_time,
                r.execution.execution_time as f64 / base as f64,
                r.metrics.makespan,
                r.metrics.processors_used,
                r.scheduling_time
            );
        }
        return Ok(());
    } else {
        let app = load_app(opts)?;
        let v = app.generate(&db).node_count();
        (app, v as u64)
    };
    let procs = get_u64_or(opts, "procs", default_procs)? as u32;
    let table = compare_algorithms(app, &db, &schedulers, procs, &SimConfig::default());
    print!("{}", table.render());
    Ok(())
}
