//! # fastsched-casch
//!
//! The CASCH-tool substitute (DESIGN.md §2): the paper's experiments
//! run through CASCH, a prototype tool that takes a sequential
//! program, generates a task graph with weights from a benchmarked
//! timing database, schedules it with a chosen algorithm, generates
//! parallel code, and measures the code's execution on the Intel
//! Paragon. This crate reproduces that pipeline end to end:
//!
//! * [`application::Application`] — the supported programs (Gaussian
//!   elimination, Laplace solver, FFT, random synthetic DAGs);
//! * [`pipeline`] — application → DAG (via the timing database) →
//!   schedule (any [`fastsched_algorithms::Scheduler`]) → validation →
//!   simulated execution, all captured in a
//!   [`pipeline::PipelineReport`];
//! * [`compare`] — multi-algorithm comparison tables in the paper's
//!   normalized format (execution time relative to FAST, processors
//!   used, scheduling time);
//! * the `casch` CLI binary (`src/bin/casch.rs`).

#![warn(missing_docs)]

pub mod application;
pub mod compare;
pub mod pipeline;

pub use application::Application;
pub use compare::{compare_algorithms, ComparisonRow, ComparisonTable};
pub use pipeline::{run_on_dag, run_pipeline, PipelineReport};
