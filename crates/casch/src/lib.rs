//! # fastsched-casch
//!
//! The CASCH-tool substitute (DESIGN.md §2): the paper's experiments
//! run through CASCH, a prototype tool that takes a sequential
//! program, generates a task graph with weights from a benchmarked
//! timing database, schedules it with a chosen algorithm, generates
//! parallel code, and measures the code's execution on the Intel
//! Paragon. This crate reproduces that pipeline end to end:
//!
//! * [`application::Application`] — the supported programs (Gaussian
//!   elimination, Laplace solver, FFT, random synthetic DAGs);
//! * [`pipeline`] — application → DAG (via the timing database) →
//!   schedule (any [`fastsched_algorithms::Scheduler`]) → validation →
//!   simulated execution, all captured in a
//!   [`pipeline::PipelineReport`];
//! * [`compare`] — multi-algorithm comparison tables in the paper's
//!   normalized format (execution time relative to FAST, processors
//!   used, scheduling time);
//! * the `casch` CLI binary (`src/bin/casch.rs`).
//!
//! ## The serving stack
//!
//! Beyond the batch pipeline, the crate hosts a long-lived scheduling
//! service (DESIGN.md §14):
//!
//! * [`protocol`] — the NDJSON wire format: one JSON request per
//!   line, one JSON response per line, correlated by `id` so
//!   responses may be pipelined and arrive out of order. The module
//!   owns both sides of the contract (parse *and* render), and
//!   [`protocol::placements_json`] is the single formatter behind the
//!   byte-identity guarantee between server responses, the
//!   integration tests, and `loadgen --check`;
//! * [`serve`] — the worker-pool server. Each worker owns a pinned
//!   `Workspace` (the zero-alloc warm path of
//!   `fastsched_algorithms`'s `schedule_into`), admission is a
//!   bounded queue that sheds excess load as explicit `overloaded`
//!   errors, per-request timeouts bound *queue wait* (started work
//!   runs to completion), and SIGINT drains in-flight requests before
//!   exit. A `stats` request returns server-wide and per-worker
//!   counters including p50/p99 service latency. Observability is
//!   first-class (DESIGN.md §15): every request is timed through
//!   queue/schedule/serialize/write phase histograms
//!   (`fastsched_metrics`), `--metrics-addr` serves a Prometheus
//!   `/metrics` page (JSON twin at `/metrics.json`) from a dedicated
//!   thread, and `--access-log` writes a sampled NDJSON access log;
//! * [`loadgen`] — the open-loop load generator (`casch loadgen`):
//!   paced or unpaced arrivals over N connections, warmup/measure
//!   phases, and optional `--check` verification of every response
//!   against a local `schedule_into` run.
//!
//! Homogeneous requests go through the `Workspace` recycle path;
//! requests carrying a `speeds` array run
//! `fastsched_algorithms::HeftHetero` instead (algo must be `heft`).

#![warn(missing_docs)]

pub mod application;
pub mod compare;
pub mod loadgen;
pub mod pipeline;
pub mod protocol;
pub mod serve;

pub use application::Application;
pub use compare::{compare_algorithms, ComparisonRow, ComparisonTable};
pub use pipeline::{run_on_dag, run_pipeline, PipelineReport};
pub use serve::{ServeConfig, ServeSummary, Server};
