//! The `casch serve` wire protocol: NDJSON over TCP.
//!
//! One JSON object per `\n`-terminated line, in both directions. A
//! client sends [`Request`] lines; the server answers each with
//! exactly one [`Response`] line carrying the request's `id` (an
//! explicit `"id"` field, or the 1-based line number within the
//! connection when omitted). Responses to pipelined requests may
//! arrive **out of order** — the `id` is the correlation key.
//!
//! ## Requests
//!
//! ```text
//! {"op":"schedule","id":1,"dag":{"nodes":[...],"edges":[...]},
//!  "algo":"fast","procs":8,"speeds":[100,50],"timeout_ms":250}
//! {"op":"stats","id":2}
//! {"op":"shutdown","id":3}
//! ```
//!
//! `op` defaults to `"schedule"`, `algo` to `"fast"`, `procs` to the
//! DAG's node count. `speeds` (percent of nominal, one entry per
//! processor) switches to the heterogeneous machine model — the
//! schedule is produced by heterogeneous HEFT and `procs` is the
//! number of speed entries. `timeout_ms` bounds the request's queue
//! wait (see DESIGN.md §14).
//!
//! An optional `comm` object selects a communication cost model
//! (DESIGN.md §16) for the model-aware schedulers (`fast`, `etf`,
//! `dls`, `heft`); it cannot be combined with `speeds`:
//!
//! ```text
//! "comm":{"model":"ideal"}
//! "comm":{"model":"alpha-beta","alpha":20,"beta_num":3,"beta_den":2}
//! "comm":{"model":"hier","groups":[4,4],"intra":[0,1,1],"inter":[40,2,1]}
//! ```
//!
//! The protocol layer keeps `comm` as pure spec data ([`CommSpec`]);
//! the service layer checks it against its `--max-groups` /
//! `--max-procs` caps *before* materializing a model, so a one-line
//! request cannot demand an enormous group table.
//!
//! An optional `mem_caps` field selects memory-constrained scheduling
//! (DESIGN.md §17) for the memory-aware schedulers (`fast`, `heft`):
//! a number is a uniform per-processor capacity, an array is one
//! capacity per processor (fixing the processor count, length capped
//! like `procs`/`speeds` before any allocation). Per-node footprints
//! travel as optional `mem` fields on the DAG's nodes. `mem_caps`
//! cannot be combined with `speeds`.
//!
//! ## Responses
//!
//! ```text
//! {"id":1,"ok":true,"algo":"FAST","procs":8,"makespan":18,
//!  "placements":[[0,0,2],[1,0,3]],"queue_us":12,"service_us":35}
//! {"id":4,"ok":false,"error":"overloaded"}
//! ```
//!
//! `placements[n] = [proc, start, finish]` for node `n`, in node-id
//! order — rendered by [`placements_json`], the same function the
//! validation harness uses, so "byte-identical to `schedule_into`"
//! is checkable on the exact response bytes.
//!
//! Error responses use a small set of stable first words: `parse:`
//! (malformed JSON or a bad field, including a `procs`/`speeds`
//! count beyond the server's processor limit), `overloaded`
//! (admission control rejected the request), `timeout` (the request
//! waited past its deadline), `line exceeds` (oversized-line
//! rejection, see [`LineReader`]), and `internal:` (the request's
//! job panicked on the worker; the worker itself survives).

use fastsched_dag::io::DagSpec;
use fastsched_schedule::{MemCapsSpec, Schedule};
use serde::Value;
use std::io::{self, BufRead};

/// Default cap on one NDJSON line (requests and responses): 4 MiB.
pub const DEFAULT_MAX_LINE: usize = 4 << 20;

// ----------------------------------------------------------- requests

/// One client request line.
// Schedule dwarfs Stats/Shutdown, but exactly one Request exists per
// parsed line and it is consumed immediately — boxing would only add
// an allocation to the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schedule a DAG.
    Schedule(ScheduleRequest),
    /// Snapshot the server's counters.
    Stats {
        /// Correlation id echoed in the response.
        id: u64,
    },
    /// Drain in-flight work, answer, and stop the server.
    Shutdown {
        /// Correlation id echoed in the response.
        id: u64,
    },
}

/// The `comm` object of a schedule request: a communication cost
/// model, kept as *spec data* here. The service layer validates it
/// against its resource caps and builds the actual
/// [`fastsched_schedule::CommModel`]; nothing in this type allocates
/// proportionally to the processor counts it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommSpec {
    /// The paper's ideal network (zero-cost links beyond the edge
    /// weight).
    Ideal,
    /// Latency–bandwidth pricing: a remote message costs
    /// `alpha + ceil(nominal * beta_num / beta_den)`.
    AlphaBeta {
        /// Fixed per-message latency.
        alpha: u64,
        /// Bandwidth factor numerator.
        beta_num: u64,
        /// Bandwidth factor denominator (must be positive).
        beta_den: u64,
    },
    /// Grouped (NUMA-style) pricing: consecutive group sizes plus an
    /// intra-group and an inter-group `[alpha, beta_num, beta_den]`
    /// tier.
    Hier {
        /// Processors per group, in group order.
        groups: Vec<u32>,
        /// Same-group link pricing.
        intra: [u64; 3],
        /// Cross-group link pricing.
        inter: [u64; 3],
    },
}

impl CommSpec {
    /// Render as the protocol's `comm` JSON object.
    pub fn to_json(&self) -> String {
        match self {
            CommSpec::Ideal => "{\"model\":\"ideal\"}".to_string(),
            CommSpec::AlphaBeta {
                alpha,
                beta_num,
                beta_den,
            } => format!(
                "{{\"model\":\"alpha-beta\",\"alpha\":{alpha},\"beta_num\":{beta_num},\
                 \"beta_den\":{beta_den}}}"
            ),
            CommSpec::Hier {
                groups,
                intra,
                inter,
            } => {
                let groups: Vec<String> = groups.iter().map(u32::to_string).collect();
                format!(
                    "{{\"model\":\"hier\",\"groups\":[{}],\"intra\":[{},{},{}],\
                     \"inter\":[{},{},{}]}}",
                    groups.join(","),
                    intra[0],
                    intra[1],
                    intra[2],
                    inter[0],
                    inter[1],
                    inter[2]
                )
            }
        }
    }
}

/// Parse the `comm` object of a schedule request. Shape and cheap
/// value checks only (a zero `beta_den` or empty/zero group is
/// rejected here); resource caps are the service layer's job.
fn parse_comm(v: &Value) -> Result<CommSpec, String> {
    let model = match field(v, "model") {
        Some(Value::String(s)) => s.as_str(),
        _ => return Err("parse: `comm.model` must be a string".to_string()),
    };
    let tier = |k: &str| -> Result<[u64; 3], String> {
        match field(v, k) {
            Some(Value::Array(xs)) if xs.len() == 3 => {
                let nums: Option<Vec<u64>> = xs.iter().map(as_u64).collect();
                let nums = nums.ok_or_else(|| {
                    format!("parse: `comm.{k}` entries must be non-negative integers")
                })?;
                if nums[2] == 0 {
                    return Err(format!("parse: `comm.{k}` beta_den must be positive"));
                }
                Ok([nums[0], nums[1], nums[2]])
            }
            _ => Err(format!(
                "parse: `comm.{k}` must be `[alpha,beta_num,beta_den]`"
            )),
        }
    };
    match model {
        "ideal" => Ok(CommSpec::Ideal),
        "alpha-beta" => {
            let get = |k: &str| {
                field(v, k)
                    .and_then(as_u64)
                    .ok_or_else(|| format!("parse: `comm.{k}` must be a non-negative integer"))
            };
            let beta_den = get("beta_den")?;
            if beta_den == 0 {
                return Err("parse: `comm.beta_den` must be positive".to_string());
            }
            Ok(CommSpec::AlphaBeta {
                alpha: get("alpha")?,
                beta_num: get("beta_num")?,
                beta_den,
            })
        }
        "hier" => {
            let groups = match field(v, "groups") {
                Some(Value::Array(xs)) => {
                    let sizes: Option<Vec<u32>> = xs
                        .iter()
                        .map(|x| {
                            as_u64(x)
                                .filter(|&s| s > 0 && s <= u32::MAX as u64)
                                .map(|s| s as u32)
                        })
                        .collect();
                    sizes.ok_or("parse: `comm.groups` must be positive integers")?
                }
                _ => return Err("parse: `comm.groups` must be an array".to_string()),
            };
            if groups.is_empty() {
                return Err("parse: `comm.groups` must not be empty".to_string());
            }
            Ok(CommSpec::Hier {
                groups,
                intra: tier("intra")?,
                inter: tier("inter")?,
            })
        }
        other => Err(format!("parse: unknown comm model `{other}`")),
    }
}

/// The payload of an `op:"schedule"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Correlation id echoed in the response.
    pub id: u64,
    /// The task graph to schedule.
    pub dag: DagSpec,
    /// Algorithm name, as accepted by the `casch` CLI (`fast`, `etf`,
    /// `heft`, ...).
    pub algo: String,
    /// Processor count; `None` means one per node.
    pub procs: Option<u32>,
    /// Heterogeneous processor speeds (percent of nominal). When set,
    /// the request is served by heterogeneous HEFT over these
    /// processors and `procs` must be absent or equal to the entry
    /// count.
    pub speeds: Option<Vec<u32>>,
    /// Per-request queue-wait deadline in milliseconds (overrides the
    /// server default; `0` disables).
    pub timeout_ms: Option<u64>,
    /// Optional communication cost model (see [`CommSpec`]); only the
    /// model-aware algorithms accept it, and it cannot be combined
    /// with `speeds`.
    pub comm: Option<CommSpec>,
    /// Optional per-processor memory capacities: a number (uniform
    /// capacity) or an array (one capacity per processor, fixing the
    /// processor count — the service layer caps its length like
    /// `procs`/`speeds` before allocating anything). Per-node
    /// footprints ride in the DAG's `mem` fields; only the
    /// memory-aware algorithms (`fast`, `heft`) accept capacities,
    /// and they cannot be combined with `speeds`.
    pub mem_caps: Option<MemCapsSpec>,
}

impl ScheduleRequest {
    /// A schedule request with defaults (`algo:"fast"`, `procs` from
    /// the DAG, no speeds, server-default timeout).
    pub fn new(id: u64, dag: DagSpec) -> Self {
        Self {
            id,
            dag,
            algo: "fast".to_string(),
            procs: None,
            speeds: None,
            timeout_ms: None,
            comm: None,
            mem_caps: None,
        }
    }

    /// Render as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "{{\"op\":\"schedule\",\"id\":{},\"algo\":\"{}\"",
            self.id,
            json_escape(&self.algo)
        );
        if let Some(p) = self.procs {
            out.push_str(&format!(",\"procs\":{p}"));
        }
        if let Some(speeds) = &self.speeds {
            out.push_str(",\"speeds\":[");
            for (i, s) in speeds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
            out.push(']');
        }
        if let Some(t) = self.timeout_ms {
            out.push_str(&format!(",\"timeout_ms\":{t}"));
        }
        if let Some(comm) = &self.comm {
            out.push_str(",\"comm\":");
            out.push_str(&comm.to_json());
        }
        match &self.mem_caps {
            Some(MemCapsSpec::Uniform(cap)) => out.push_str(&format!(",\"mem_caps\":{cap}")),
            Some(MemCapsSpec::PerProc(caps)) => {
                out.push_str(",\"mem_caps\":[");
                for (i, c) in caps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&c.to_string());
                }
                out.push(']');
            }
            None => {}
        }
        let dag = serde_json::to_string(&self.dag).expect("DagSpec serializes");
        out.push_str(",\"dag\":");
        out.push_str(&dag);
        out.push('}');
        out
    }
}

impl Request {
    /// Render as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Schedule(r) => r.to_line(),
            Request::Stats { id } => format!("{{\"op\":\"stats\",\"id\":{id}}}"),
            Request::Shutdown { id } => format!("{{\"op\":\"shutdown\",\"id\":{id}}}"),
        }
    }

    /// Parse one request line. `default_id` (the connection's 1-based
    /// line number) is used when the request carries no `"id"`.
    pub fn parse(line: &str, default_id: u64) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("parse: {e}"))?;
        if !matches!(v, Value::Object(_)) {
            return Err("parse: request must be a JSON object".to_string());
        }
        let id = match field(&v, "id") {
            None | Some(Value::Null) => default_id,
            Some(x) => as_u64(x).ok_or("parse: `id` must be a non-negative integer")?,
        };
        let op = match field(&v, "op") {
            None => "schedule",
            Some(Value::String(s)) => s.as_str(),
            Some(_) => return Err("parse: `op` must be a string".to_string()),
        };
        match op {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "schedule" => {
                let dag_v = field(&v, "dag").ok_or("parse: missing `dag`")?;
                let dag = <DagSpec as serde::Deserialize>::from_value(dag_v)
                    .map_err(|e| format!("parse: dag: {e}"))?;
                let algo = match field(&v, "algo") {
                    None | Some(Value::Null) => "fast".to_string(),
                    Some(Value::String(s)) => s.clone(),
                    Some(_) => return Err("parse: `algo` must be a string".to_string()),
                };
                let procs = match field(&v, "procs") {
                    None | Some(Value::Null) => None,
                    Some(x) => Some(
                        as_u64(x)
                            .filter(|&p| p > 0 && p <= u32::MAX as u64)
                            .ok_or("parse: `procs` must be a positive integer")?
                            as u32,
                    ),
                };
                let speeds = match field(&v, "speeds") {
                    None | Some(Value::Null) => None,
                    Some(Value::Array(xs)) => {
                        let pcts: Option<Vec<u32>> = xs
                            .iter()
                            .map(|x| as_u64(x).filter(|&p| p > 0).map(|p| p as u32))
                            .collect();
                        let pcts =
                            pcts.ok_or("parse: `speeds` must be positive integer percentages")?;
                        if pcts.is_empty() {
                            return Err("parse: `speeds` must not be empty".to_string());
                        }
                        Some(pcts)
                    }
                    Some(_) => return Err("parse: `speeds` must be an array".to_string()),
                };
                let timeout_ms = match field(&v, "timeout_ms") {
                    None | Some(Value::Null) => None,
                    Some(x) => Some(
                        as_u64(x).ok_or("parse: `timeout_ms` must be a non-negative integer")?,
                    ),
                };
                let comm = match field(&v, "comm") {
                    None | Some(Value::Null) => None,
                    Some(c) => Some(parse_comm(c)?),
                };
                let mem_caps = match field(&v, "mem_caps") {
                    None | Some(Value::Null) => None,
                    Some(Value::Array(xs)) => {
                        let caps: Option<Vec<u64>> = xs.iter().map(as_u64).collect();
                        let caps =
                            caps.ok_or("parse: `mem_caps` entries must be non-negative integers")?;
                        if caps.is_empty() {
                            return Err("parse: `mem_caps` must not be empty".to_string());
                        }
                        Some(MemCapsSpec::PerProc(caps))
                    }
                    Some(x) => Some(MemCapsSpec::Uniform(as_u64(x).ok_or(
                        "parse: `mem_caps` must be a non-negative integer or an array of them",
                    )?)),
                };
                Ok(Request::Schedule(ScheduleRequest {
                    id,
                    dag,
                    algo,
                    procs,
                    speeds,
                    timeout_ms,
                    comm,
                    mem_caps,
                }))
            }
            other => Err(format!("parse: unknown op `{other}`")),
        }
    }
}

// ---------------------------------------------------------- responses

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed schedule.
    Schedule(ScheduleResponse),
    /// The request failed; `error` says why (see the module docs for
    /// the stable error vocabulary).
    Error {
        /// Correlation id of the failed request.
        id: u64,
        /// Why the request failed.
        error: String,
    },
    /// Counter snapshot answering an `op:"stats"` request.
    Stats(StatsSnapshot),
    /// Acknowledgement of an `op:"shutdown"` request, sent after the
    /// queue has drained.
    Shutdown {
        /// Correlation id of the shutdown request.
        id: u64,
        /// Requests completed over the server's lifetime.
        completed: u64,
    },
}

/// A successful scheduling response.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResponse {
    /// Correlation id of the request.
    pub id: u64,
    /// Display name of the algorithm that ran (`"FAST"`, ...).
    pub algo: String,
    /// Processors the request was scheduled onto.
    pub procs: u32,
    /// Schedule length.
    pub makespan: u64,
    /// `placements[n] = (proc, start, finish)` in node-id order.
    pub placements: Vec<(u32, u64, u64)>,
    /// Microseconds the request waited in the admission queue.
    pub queue_us: u64,
    /// Microseconds the worker spent scheduling.
    pub service_us: u64,
}

impl ScheduleResponse {
    /// Capture a finished schedule as a response payload.
    pub fn from_schedule(
        id: u64,
        algo: &str,
        procs: u32,
        schedule: &Schedule,
        queue_us: u64,
        service_us: u64,
    ) -> Self {
        Self {
            id,
            algo: algo.to_string(),
            procs,
            makespan: schedule.makespan(),
            placements: placements_of(schedule),
            queue_us,
            service_us,
        }
    }

    /// Render as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"id\":{},\"ok\":true,\"algo\":\"{}\",\"procs\":{},\"makespan\":{},\
             \"placements\":{},\"queue_us\":{},\"service_us\":{}}}",
            self.id,
            json_escape(&self.algo),
            self.procs,
            self.makespan,
            placements_json(&self.placements),
            self.queue_us,
            self.service_us
        )
    }
}

/// Per-worker counters inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index (0-based).
    pub worker: usize,
    /// Requests this worker completed.
    pub requests: u64,
    /// Median service time over the worker's recent requests, µs.
    pub p50_us: u64,
    /// 99th-percentile service time over the worker's recent
    /// requests, µs.
    pub p99_us: u64,
}

/// One request phase's latency distribution inside a
/// [`StatsSnapshot`]: quantiles from the server-side histogram, in
/// microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Phase name: `queue`, `schedule`, `serialize`, or `write`.
    pub phase: String,
    /// Observations recorded in this phase.
    pub count: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Mean, µs.
    pub mean_us: u64,
}

/// Server counters answering an `op:"stats"` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Correlation id of the stats request.
    pub id: u64,
    /// Worker-thread count.
    pub threads: usize,
    /// Admission-queue capacity.
    pub queue_depth: usize,
    /// Schedule requests admitted to the queue.
    pub accepted: u64,
    /// Schedule requests rejected by admission control (`overloaded`).
    pub rejected: u64,
    /// Requests that waited past their deadline (`timeout`).
    pub timeouts: u64,
    /// Lines that failed to parse (including oversized lines).
    pub malformed: u64,
    /// Schedule requests completed successfully.
    pub completed: u64,
    /// Admitted requests not yet answered.
    pub in_flight: u64,
    /// Per-worker counters, in worker-index order.
    pub workers: Vec<WorkerSnapshot>,
    /// CPU cores on the serving host (`0` from servers predating the
    /// field) — makes recorded benchmark scrapes self-describing.
    pub host_cores: usize,
    /// Whole seconds since the server started (`0` from servers
    /// predating the field).
    pub uptime_s: u64,
    /// Per-phase latency distributions (queue / schedule / serialize
    /// / write), merged across workers; empty when the server has
    /// phase metrics disabled or predates them.
    pub phases: Vec<PhaseSnapshot>,
}

impl StatsSnapshot {
    /// Render as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"worker\":{},\"requests\":{},\"p50_us\":{},\"p99_us\":{}}}",
                    w.worker, w.requests, w.p50_us, w.p99_us
                )
            })
            .collect();
        // New fields ride after `workers` so every pre-existing field
        // keeps its exact bytes and position (clients that slice the
        // prefix keep working).
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\
                     \"mean_us\":{}}}",
                    json_escape(&p.phase),
                    p.count,
                    p.p50_us,
                    p.p99_us,
                    p.p999_us,
                    p.mean_us
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"ok\":true,\"stats\":{{\"threads\":{},\"queue_depth\":{},\
             \"accepted\":{},\"rejected\":{},\"timeouts\":{},\"malformed\":{},\
             \"completed\":{},\"in_flight\":{},\"workers\":[{}],\"host_cores\":{},\
             \"uptime_s\":{},\"phases\":{{{}}}}}}}",
            self.id,
            self.threads,
            self.queue_depth,
            self.accepted,
            self.rejected,
            self.timeouts,
            self.malformed,
            self.completed,
            self.in_flight,
            workers.join(","),
            self.host_cores,
            self.uptime_s,
            phases.join(",")
        )
    }
}

impl Response {
    /// Render as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Schedule(r) => r.to_line(),
            Response::Error { id, error } => {
                format!(
                    "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(error)
                )
            }
            Response::Stats(s) => s.to_line(),
            Response::Shutdown { id, completed } => {
                format!("{{\"id\":{id},\"ok\":true,\"shutdown\":true,\"completed\":{completed}}}")
            }
        }
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("parse: {e}"))?;
        let id = field(&v, "id")
            .and_then(as_u64)
            .ok_or("parse: response missing `id`")?;
        if let Some(err) = field(&v, "error") {
            let Value::String(error) = err else {
                return Err("parse: `error` must be a string".to_string());
            };
            return Ok(Response::Error {
                id,
                error: error.clone(),
            });
        }
        if let Some(stats) = field(&v, "stats") {
            let get = |k: &str| {
                field(stats, k)
                    .and_then(as_u64)
                    .ok_or_else(|| format!("parse: stats missing `{k}`"))
            };
            let workers = match field(stats, "workers") {
                Some(Value::Array(ws)) => ws
                    .iter()
                    .map(|w| {
                        let get = |k: &str| {
                            field(w, k)
                                .and_then(as_u64)
                                .ok_or_else(|| format!("parse: worker missing `{k}`"))
                        };
                        Ok(WorkerSnapshot {
                            worker: get("worker")? as usize,
                            requests: get("requests")?,
                            p50_us: get("p50_us")?,
                            p99_us: get("p99_us")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("parse: stats missing `workers`".to_string()),
            };
            // `host_cores`, `uptime_s` and `phases` are optional:
            // servers predating them simply don't send them.
            let phases = match field(stats, "phases") {
                Some(Value::Object(entries)) => entries
                    .iter()
                    .map(|(name, body)| {
                        let get = |k: &str| {
                            field(body, k)
                                .and_then(as_u64)
                                .ok_or_else(|| format!("parse: phase `{name}` missing `{k}`"))
                        };
                        Ok(PhaseSnapshot {
                            phase: name.clone(),
                            count: get("count")?,
                            p50_us: get("p50_us")?,
                            p99_us: get("p99_us")?,
                            p999_us: get("p999_us")?,
                            mean_us: get("mean_us")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => Vec::new(),
            };
            return Ok(Response::Stats(StatsSnapshot {
                id,
                threads: get("threads")? as usize,
                queue_depth: get("queue_depth")? as usize,
                accepted: get("accepted")?,
                rejected: get("rejected")?,
                timeouts: get("timeouts")?,
                malformed: get("malformed")?,
                completed: get("completed")?,
                in_flight: get("in_flight")?,
                workers,
                host_cores: field(stats, "host_cores").and_then(as_u64).unwrap_or(0) as usize,
                uptime_s: field(stats, "uptime_s").and_then(as_u64).unwrap_or(0),
                phases,
            }));
        }
        if field(&v, "shutdown").is_some() {
            return Ok(Response::Shutdown {
                id,
                completed: field(&v, "completed")
                    .and_then(as_u64)
                    .ok_or("parse: shutdown missing `completed`")?,
            });
        }
        let makespan = field(&v, "makespan")
            .and_then(as_u64)
            .ok_or("parse: response missing `makespan`")?;
        let algo = match field(&v, "algo") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err("parse: response missing `algo`".to_string()),
        };
        let procs = field(&v, "procs")
            .and_then(as_u64)
            .ok_or("parse: response missing `procs`")? as u32;
        let placements = match field(&v, "placements") {
            Some(Value::Array(rows)) => rows
                .iter()
                .map(|row| match row {
                    Value::Array(xs) if xs.len() == 3 => {
                        let n = |i: usize| as_u64(&xs[i]);
                        match (n(0), n(1), n(2)) {
                            (Some(p), Some(s), Some(f)) => Ok((p as u32, s, f)),
                            _ => Err("parse: placement entries must be integers".to_string()),
                        }
                    }
                    _ => Err("parse: each placement must be [proc,start,finish]".to_string()),
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("parse: response missing `placements`".to_string()),
        };
        Ok(Response::Schedule(ScheduleResponse {
            id,
            algo,
            procs,
            makespan,
            placements,
            queue_us: field(&v, "queue_us").and_then(as_u64).unwrap_or(0),
            service_us: field(&v, "service_us").and_then(as_u64).unwrap_or(0),
        }))
    }
}

/// `(proc, start, finish)` per node, in node-id order.
pub fn placements_of(schedule: &Schedule) -> Vec<(u32, u64, u64)> {
    schedule
        .tasks()
        .map(|t| (t.proc.0, t.start, t.finish))
        .collect()
}

/// Render placements as the protocol's `[[proc,start,finish],...]`
/// array. Both the server and the validation harness render through
/// here, so equality of the returned strings is equality of the
/// response bytes.
pub fn placements_json(placements: &[(u32, u64, u64)]) -> String {
    let mut out = String::with_capacity(8 + placements.len() * 12);
    out.push('[');
    for (i, &(p, s, f)) in placements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{p},{s},{f}]"));
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping for protocol strings (quotes,
/// backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, x)| x),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(x) => Some(*x),
        _ => None,
    }
}

// -------------------------------------------------------- line reader

/// The result of reading one line with a [`LineReader`].
#[derive(Debug, PartialEq, Eq)]
pub enum Line {
    /// A complete line (without its newline).
    Text(String),
    /// The line exceeded the reader's byte cap; roughly this many
    /// bytes were discarded up to (not including) the newline.
    TooLong(usize),
}

/// Bounded, resumable NDJSON line reader.
///
/// Reads whole `\n`-terminated lines while never buffering more than
/// the configured cap: a line that grows past `max` bytes is discarded
/// as it streams in and reported as [`Line::TooLong`] once its newline
/// arrives, so one hostile client cannot balloon server memory.
///
/// Timeout-friendly: a `WouldBlock`/`TimedOut` error from the
/// underlying reader propagates out of [`LineReader::next_line`], and
/// the partial line survives inside the reader — call `next_line`
/// again to resume. `casch serve` relies on this to poll its shutdown
/// flag between read timeouts without dropping bytes.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    max: usize,
    /// Bytes discarded from an over-cap line still being skipped.
    discarded: usize,
    overlong: bool,
}

impl<R: BufRead> LineReader<R> {
    /// Wrap `inner`, capping lines at `max` bytes.
    pub fn new(inner: R, max: usize) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            max: max.max(1),
            discarded: 0,
            overlong: false,
        }
    }

    /// Read the next line. `Ok(None)` is end-of-stream; errors
    /// (including read timeouts) are resumable — see the type docs.
    pub fn next_line(&mut self) -> io::Result<Option<Line>> {
        loop {
            let (consumed, newline_at) = {
                let available = match self.inner.fill_buf() {
                    Ok(b) => b,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if available.is_empty() {
                    // EOF: yield any unterminated trailing line.
                    if self.overlong {
                        let n = self.discarded;
                        self.overlong = false;
                        self.discarded = 0;
                        return Ok(Some(Line::TooLong(n)));
                    }
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(Some(Line::Text(line)));
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if !self.overlong {
                            self.buf.extend_from_slice(&available[..pos]);
                        } else {
                            self.discarded += pos;
                        }
                        (pos + 1, true)
                    }
                    None => {
                        if !self.overlong {
                            self.buf.extend_from_slice(available);
                        } else {
                            self.discarded += available.len();
                        }
                        (available.len(), false)
                    }
                }
            };
            self.inner.consume(consumed);
            if !self.overlong && self.buf.len() > self.max {
                self.discarded = self.buf.len();
                self.buf.clear();
                self.overlong = true;
            }
            if newline_at {
                if self.overlong {
                    let n = self.discarded;
                    self.overlong = false;
                    self.discarded = 0;
                    return Ok(Some(Line::TooLong(n)));
                }
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.buf.clear();
                return Ok(Some(Line::Text(line)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsched_algorithms::Scheduler;
    use fastsched_dag::examples::paper_figure1;
    use std::io::Cursor;

    fn figure1_spec() -> DagSpec {
        DagSpec::from_dag(&paper_figure1())
    }

    #[test]
    fn schedule_request_round_trips() {
        let mut req = ScheduleRequest::new(7, figure1_spec());
        req.algo = "etf".to_string();
        req.procs = Some(4);
        req.timeout_ms = Some(250);
        let line = req.to_line();
        let parsed = Request::parse(&line, 999).expect("parses");
        assert_eq!(parsed, Request::Schedule(req));
    }

    #[test]
    fn hetero_request_round_trips() {
        let mut req = ScheduleRequest::new(1, figure1_spec());
        req.algo = "heft".to_string();
        req.speeds = Some(vec![100, 50, 200]);
        let line = req.to_line();
        assert_eq!(Request::parse(&line, 0).unwrap(), Request::Schedule(req));
    }

    #[test]
    fn comm_requests_round_trip() {
        let mut req = ScheduleRequest::new(3, figure1_spec());
        req.comm = Some(CommSpec::AlphaBeta {
            alpha: 20,
            beta_num: 3,
            beta_den: 2,
        });
        let line = req.to_line();
        assert_eq!(Request::parse(&line, 0).unwrap(), Request::Schedule(req));

        let mut req = ScheduleRequest::new(4, figure1_spec());
        req.algo = "heft".to_string();
        req.procs = Some(8);
        req.comm = Some(CommSpec::Hier {
            groups: vec![4, 4],
            intra: [0, 1, 1],
            inter: [40, 2, 1],
        });
        let line = req.to_line();
        assert_eq!(Request::parse(&line, 0).unwrap(), Request::Schedule(req));

        let mut req = ScheduleRequest::new(5, figure1_spec());
        req.comm = Some(CommSpec::Ideal);
        assert_eq!(
            Request::parse(&req.to_line(), 0).unwrap(),
            Request::Schedule(req)
        );
    }

    #[test]
    fn malformed_comm_is_a_parse_error() {
        let dag = "\"dag\":{\"nodes\":[],\"edges\":[]}";
        for bad in [
            format!("{{{dag},\"comm\":7}}"),
            format!("{{{dag},\"comm\":{{}}}}"),
            format!("{{{dag},\"comm\":{{\"model\":\"nope\"}}}}"),
            format!("{{{dag},\"comm\":{{\"model\":\"alpha-beta\",\"alpha\":1}}}}"),
            format!(
                "{{{dag},\"comm\":{{\"model\":\"alpha-beta\",\"alpha\":1,\
                 \"beta_num\":1,\"beta_den\":0}}}}"
            ),
            format!("{{{dag},\"comm\":{{\"model\":\"hier\",\"groups\":[]}}}}"),
            format!(
                "{{{dag},\"comm\":{{\"model\":\"hier\",\"groups\":[0],\
                 \"intra\":[0,1,1],\"inter\":[1,1,1]}}}}"
            ),
            format!(
                "{{{dag},\"comm\":{{\"model\":\"hier\",\"groups\":[2],\
                 \"intra\":[0,1],\"inter\":[1,1,1]}}}}"
            ),
        ] {
            let err = Request::parse(&bad, 1).expect_err(&bad);
            assert!(err.starts_with("parse:"), "{bad} -> {err}");
        }
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        for req in [Request::Stats { id: 3 }, Request::Shutdown { id: 9 }] {
            assert_eq!(Request::parse(&req.to_line(), 0).unwrap(), req);
        }
    }

    #[test]
    fn missing_id_defaults_to_line_number() {
        let req = Request::parse("{\"op\":\"stats\"}", 42).unwrap();
        assert_eq!(req, Request::Stats { id: 42 });
    }

    #[test]
    fn malformed_requests_are_parse_errors() {
        for bad in [
            "not json",
            "[1,2,3]",
            "{\"op\":\"schedule\"}",        // missing dag
            "{\"op\":\"nope\",\"dag\":{}}", // unknown op
            "{\"dag\":{\"nodes\":[]}}",     // dag missing edges
            "{\"dag\":{\"nodes\":[],\"edges\":[]},\"procs\":0}", // zero procs
            "{\"dag\":{\"nodes\":[],\"edges\":[]},\"speeds\":[]}", // empty speeds
        ] {
            let err = Request::parse(bad, 1).expect_err(bad);
            assert!(err.starts_with("parse:"), "{bad} -> {err}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Schedule(ScheduleResponse {
            id: 5,
            algo: "FAST".to_string(),
            procs: 9,
            makespan: 18,
            placements: vec![(0, 0, 2), (1, 0, 3), (0, 2, 6)],
            queue_us: 12,
            service_us: 35,
        });
        assert_eq!(Response::parse(&resp.to_line()).unwrap(), resp);

        let err = Response::Error {
            id: 8,
            error: "overloaded".to_string(),
        };
        assert_eq!(Response::parse(&err.to_line()).unwrap(), err);

        let stats = Response::Stats(StatsSnapshot {
            id: 2,
            threads: 4,
            queue_depth: 1024,
            accepted: 10,
            rejected: 1,
            timeouts: 0,
            malformed: 2,
            completed: 9,
            in_flight: 1,
            workers: vec![
                WorkerSnapshot {
                    worker: 0,
                    requests: 5,
                    p50_us: 30,
                    p99_us: 55,
                },
                WorkerSnapshot {
                    worker: 1,
                    requests: 4,
                    p50_us: 28,
                    p99_us: 61,
                },
            ],
            host_cores: 8,
            uptime_s: 42,
            phases: vec![
                PhaseSnapshot {
                    phase: "queue".to_string(),
                    count: 9,
                    p50_us: 11,
                    p99_us: 90,
                    p999_us: 120,
                    mean_us: 15,
                },
                PhaseSnapshot {
                    phase: "schedule".to_string(),
                    count: 9,
                    p50_us: 30,
                    p99_us: 61,
                    p999_us: 61,
                    mean_us: 33,
                },
            ],
        });
        assert_eq!(Response::parse(&stats.to_line()).unwrap(), stats);

        // Byte-compat: every pre-existing stats field renders at its
        // pre-phases position — the prefix through `"workers":[...]`
        // is unchanged, new fields only append after it.
        if let Response::Stats(s) = &stats {
            let line = s.to_line();
            let legacy_prefix = format!(
                "{{\"id\":2,\"ok\":true,\"stats\":{{\"threads\":4,\"queue_depth\":1024,\
                 \"accepted\":10,\"rejected\":1,\"timeouts\":0,\"malformed\":2,\
                 \"completed\":9,\"in_flight\":1,\"workers\":[{},{}],",
                "{\"worker\":0,\"requests\":5,\"p50_us\":30,\"p99_us\":55}",
                "{\"worker\":1,\"requests\":4,\"p50_us\":28,\"p99_us\":61}"
            );
            assert!(line.starts_with(&legacy_prefix), "prefix changed: {line}");
        }

        // A stats line from a server predating the new fields still
        // parses, with defaults.
        let legacy = "{\"id\":2,\"ok\":true,\"stats\":{\"threads\":1,\"queue_depth\":4,\
                      \"accepted\":0,\"rejected\":0,\"timeouts\":0,\"malformed\":0,\
                      \"completed\":0,\"in_flight\":0,\"workers\":[]}}";
        match Response::parse(legacy).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.host_cores, 0);
                assert_eq!(s.uptime_s, 0);
                assert!(s.phases.is_empty());
            }
            other => panic!("expected stats, got {other:?}"),
        }

        let done = Response::Shutdown {
            id: 1,
            completed: 123,
        };
        assert_eq!(Response::parse(&done.to_line()).unwrap(), done);
    }

    #[test]
    fn placements_json_matches_schedule_bytes() {
        let dag = paper_figure1();
        let schedule = fastsched_algorithms::Fast::new().schedule(&dag, 9);
        let resp = ScheduleResponse::from_schedule(1, "FAST", 9, &schedule, 0, 0);
        // The response's placement bytes must reproduce exactly from
        // the schedule alone — that is the byte-identity contract the
        // serve tests and `casch loadgen --check` verify end to end.
        assert_eq!(
            placements_json(&resp.placements),
            placements_json(&placements_of(&schedule)),
        );
        assert_eq!(resp.makespan, schedule.makespan());
        assert_eq!(resp.placements.len(), dag.node_count());
    }

    #[test]
    fn line_reader_yields_lines_and_final_fragment() {
        let mut r = LineReader::new(Cursor::new(b"abc\ndef\nghi".to_vec()), 64);
        assert_eq!(r.next_line().unwrap(), Some(Line::Text("abc".into())));
        assert_eq!(r.next_line().unwrap(), Some(Line::Text("def".into())));
        assert_eq!(r.next_line().unwrap(), Some(Line::Text("ghi".into())));
        assert_eq!(r.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_rejects_oversized_lines_without_buffering_them() {
        let long = vec![b'x'; 1000];
        let mut data = long.clone();
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(Cursor::new(data), 16);
        match r.next_line().unwrap() {
            Some(Line::TooLong(n)) => assert!((17..=1000).contains(&n), "discarded {n}"),
            other => panic!("expected TooLong, got {other:?}"),
        }
        // The stream recovers at the next newline.
        assert_eq!(r.next_line().unwrap(), Some(Line::Text("ok".into())));
        assert_eq!(r.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_oversized_final_fragment_reports_at_eof() {
        let mut r = LineReader::new(Cursor::new(vec![b'y'; 100]), 10);
        assert!(matches!(r.next_line().unwrap(), Some(Line::TooLong(_))));
        assert_eq!(r.next_line().unwrap(), None);
    }
}
