//! The applications the pipeline can "parallelize": the paper's three
//! real workloads plus the §5.2 synthetic random DAGs.

use fastsched_dag::Dag;
use fastsched_workloads::{
    cholesky_dag, fft_dag, gaussian_elimination_dag, laplace_dag, random_layered_dag,
    systolic_matmul_dag, RandomDagConfig, TimingDatabase,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A program the CASCH-substitute can turn into a task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Application {
    /// Gaussian elimination on an `n × n` matrix.
    Gaussian {
        /// Matrix dimension.
        n: usize,
    },
    /// Laplace equation solver on an `n × n` grid.
    Laplace {
        /// Grid dimension.
        n: usize,
    },
    /// FFT on `points` input points (power of two).
    Fft {
        /// Number of points.
        points: usize,
    },
    /// Random layered DAG per §5.2 (paper density, ~35 edges/node).
    Random {
        /// Number of nodes.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Random layered DAG, sparse variant (2–4 successors per node).
    RandomSparse {
        /// Number of nodes.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Tiled Cholesky factorization on an `n × n` tile matrix.
    Cholesky {
        /// Tile-matrix dimension.
        n: usize,
    },
    /// Systolic matrix-multiply wave on an `n × n` grid.
    Systolic {
        /// Grid dimension.
        n: usize,
    },
}

impl Application {
    /// Generate the weighted task graph via the timing database.
    pub fn generate(&self, db: &TimingDatabase) -> Dag {
        match *self {
            Application::Gaussian { n } => gaussian_elimination_dag(n, db),
            Application::Laplace { n } => laplace_dag(n, db),
            Application::Fft { points } => fft_dag(points, db),
            Application::Random { nodes, seed } => {
                random_layered_dag(&RandomDagConfig::paper(nodes, db), seed)
            }
            Application::RandomSparse { nodes, seed } => {
                random_layered_dag(&RandomDagConfig::sparse(nodes, db), seed)
            }
            Application::Cholesky { n } => cholesky_dag(n, db),
            Application::Systolic { n } => systolic_matmul_dag(n, db),
        }
    }

    /// Parse `name` + `size` as the CLI does: `gauss`, `laplace`,
    /// `fft`, `random`, `random-sparse`.
    pub fn from_cli(name: &str, size: usize, seed: u64) -> Option<Self> {
        match name {
            "gauss" | "gaussian" => Some(Application::Gaussian { n: size }),
            "laplace" => Some(Application::Laplace { n: size }),
            "fft" => Some(Application::Fft { points: size }),
            "random" => Some(Application::Random { nodes: size, seed }),
            "random-sparse" => Some(Application::RandomSparse { nodes: size, seed }),
            "cholesky" => Some(Application::Cholesky { n: size }),
            "systolic" => Some(Application::Systolic { n: size }),
            _ => None,
        }
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Application::Gaussian { n } => write!(f, "gauss(N={n})"),
            Application::Laplace { n } => write!(f, "laplace(N={n})"),
            Application::Fft { points } => write!(f, "fft({points} pts)"),
            Application::Random { nodes, seed } => write!(f, "random(v={nodes}, seed={seed})"),
            Application::RandomSparse { nodes, seed } => {
                write!(f, "random-sparse(v={nodes}, seed={seed})")
            }
            Application::Cholesky { n } => write!(f, "cholesky(t={n})"),
            Application::Systolic { n } => write!(f, "systolic(N={n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_each_application() {
        let db = TimingDatabase::paragon();
        assert_eq!(
            Application::Gaussian { n: 4 }.generate(&db).node_count(),
            20
        );
        assert_eq!(Application::Laplace { n: 4 }.generate(&db).node_count(), 18);
        assert_eq!(
            Application::Fft { points: 16 }.generate(&db).node_count(),
            14
        );
        assert_eq!(
            Application::Random { nodes: 50, seed: 1 }
                .generate(&db)
                .node_count(),
            50
        );
    }

    #[test]
    fn generates_linalg_applications() {
        let db = TimingDatabase::paragon();
        assert_eq!(
            Application::Cholesky { n: 4 }.generate(&db).node_count(),
            20
        );
        let sys = Application::Systolic { n: 4 }.generate(&db);
        assert_eq!(sys.node_count(), 18);
    }

    #[test]
    fn cli_parsing() {
        assert_eq!(
            Application::from_cli("gauss", 8, 0),
            Some(Application::Gaussian { n: 8 })
        );
        assert_eq!(
            Application::from_cli("random", 100, 7),
            Some(Application::Random {
                nodes: 100,
                seed: 7
            })
        );
        assert_eq!(Application::from_cli("nope", 8, 0), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Application::Fft { points: 64 }.to_string(), "fft(64 pts)");
    }
}
