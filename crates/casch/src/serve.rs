//! `casch serve` — a persistent NDJSON-over-TCP scheduling service.
//!
//! The front-end of the zero-alloc batch core (DESIGN.md §14): a
//! [`Server`] accepts connections, parses one [`crate::protocol::Request`]
//! per line, and shards admitted requests across a fixed
//! [`fastsched_algorithms::WorkerPool`] whose workers each own a
//! pinned [`fastsched_algorithms::Workspace`] — so the warm
//! scheduling path inside a worker stays allocation-free while the
//! protocol layer pays only per-request I/O.
//!
//! The service layer around the pool:
//!
//! * **Admission control** — the pool queue is bounded
//!   ([`ServeConfig::queue_depth`]); a full queue answers
//!   `{"ok":false,"error":"overloaded"}` immediately instead of
//!   buffering without bound.
//! * **Per-request timeouts** — a request that waits in the queue past
//!   its deadline ([`ServeConfig::default_timeout_ms`] or the
//!   request's own `timeout_ms`) is answered
//!   `{"ok":false,"error":"timeout"}` without being scheduled; a
//!   request that has *started* always runs to completion (the
//!   scheduling core is not preemptible).
//! * **Resource caps** — a request line is bounded
//!   ([`ServeConfig::max_line_bytes`]), and so is the processor count
//!   a request may demand ([`ServeConfig::max_procs`], floored by the
//!   DAG's own node count): schedulers allocate O(procs) scratch, so
//!   an uncapped `procs` (or hetero `speeds` array) would let one
//!   tiny line force a multi-GB allocation. Oversized values are
//!   answered with a `parse:` error instead. Per-processor `mem_caps`
//!   tables obey the same cap, checked before the table is resolved.
//! * **Graceful shutdown** — SIGINT (via
//!   [`install_sigint_handler`]) or an `op:"shutdown"` request stops
//!   the accept loop, drains every admitted request to a response,
//!   then joins the workers. Accepted work is never abandoned.
//! * **Metrics** — accepted/rejected/timeout/malformed/completed
//!   totals plus per-worker request counts and per-phase
//!   (queue / schedule / serialize / write) latency histograms
//!   ([`fastsched_metrics`]; lock-free, every observation counted —
//!   no sample-window bias under saturation). Served inline by
//!   `op:"stats"`, and — when [`ServeConfig::metrics_addr`] is set —
//!   as Prometheus text exposition on `GET /metrics` (JSON twin at
//!   `/metrics.json`) from a dedicated thread that is never a pool
//!   worker, so scrapes keep working while the pool is saturated.
//!   An optional sampled NDJSON access log
//!   ([`ServeConfig::access_log`]) records every Nth request's id,
//!   algorithm, size, phase timings and outcome.
//!
//! **Memory ordering.** Every statistic here is `Relaxed`: each
//! counter/gauge/histogram cell is an independent statistical
//! quantity whose contract is per-cell atomicity and monotonicity,
//! not cross-cell synchronization — a stats snapshot is a sample,
//! not a consistent cut. The one consumer that *waits* on a value,
//! the shutdown drain (`in_flight == 0`), needs only the gauge's own
//! modification order plus eventual visibility, which `Relaxed`
//! atomics guarantee. Snapshots read sinks before sources
//! (`completed` before `accepted`, `in_flight` last) so derived
//! inequalities hold in practice.
//!
//! Responses to pipelined requests are written by the worker that
//! finished them, so they may interleave out of order; the `id` field
//! correlates. Every response is one `write_all` of a whole line
//! under the connection's write lock, so lines never interleave
//! mid-byte. Writes carry a timeout (`WRITE_TIMEOUT`, 10 s): a client
//! that stops reading while the socket buffer is full can stall a
//! worker for at most that long before its connection is declared
//! dead and closed — it can never pin a worker (or wedge the
//! shutdown drain) forever.

use crate::protocol::{
    self, CommSpec, Line, LineReader, PhaseSnapshot, Request, Response, ScheduleRequest,
    ScheduleResponse, StatsSnapshot, WorkerSnapshot,
};
use fastsched_algorithms::{
    BoundedDsc, BranchAndBound, Cpop, Dcp, Dls, Dsc, Etf, Ez, Fast, FastParallel, FastSa, Heft,
    HeftHetero, Hlfet, Ish, Lc, Mcp, Md, ProcessorSpeeds, Scheduler, WorkerPool,
};
use fastsched_dag::Dag;
use fastsched_metrics::prometheus::{Exposition, CONTENT_TYPE};
use fastsched_metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use fastsched_schedule::{
    AlphaBeta, CommModel, CostModel, Hierarchical, MemCapsSpec, MemoryCapacities, Schedule,
};
use std::io::{self, BufReader, Read as _, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// How often blocked loops (accept, reads, drain) re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// How long one response write may block before the client is
/// declared vanished and the connection is torn down. Generous —
/// responses are small, so a healthy client drains the socket buffer
/// in well under this — but finite, so a slow consumer bounds the
/// time it can hold a pool worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default [`ServeConfig::max_procs`]: far above any sensible
/// homogeneous machine while keeping the per-request O(procs) scratch
/// in the hundreds of KB.
pub const DEFAULT_MAX_PROCS: u32 = 16_384;

/// Default [`ServeConfig::max_groups`]: far above any sensible NUMA
/// hierarchy while bounding the per-request group table.
pub const DEFAULT_MAX_GROUPS: u32 = 1_024;

/// Request-vocabulary algorithm names, in the order their per-algo
/// request counters are kept. The final entry is the heterogeneous
/// engine, selected by a `speeds` array rather than by name.
const ALGO_NAMES: [&str; 18] = [
    "fast",
    "dsc",
    "md",
    "etf",
    "dls",
    "hlfet",
    "mcp",
    "heft",
    "fast-ms",
    "fast-sa",
    "dcp",
    "ish",
    "ez",
    "lc",
    "cpop",
    "dsc-llb",
    "bnb",
    "heft-hetero",
];

/// Index into [`ALGO_NAMES`] (and the per-algo counters) for a
/// homogeneous request's algorithm name.
fn algo_index(name: &str) -> usize {
    ALGO_NAMES
        .iter()
        .position(|&a| a == name)
        .unwrap_or(ALGO_NAMES.len() - 1)
}

/// Resolve an algorithm name (the CLI vocabulary) to a scheduler.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "fast" => Box::new(Fast::new()),
        "dsc" => Box::new(Dsc::new()),
        "md" => Box::new(Md::new()),
        "etf" => Box::new(Etf::new()),
        "dls" => Box::new(Dls::new()),
        "hlfet" => Box::new(Hlfet::new()),
        "mcp" => Box::new(Mcp::new()),
        "heft" => Box::new(Heft::new()),
        "fast-ms" => Box::new(FastParallel::new()),
        "fast-sa" => Box::new(FastSa::new()),
        "dcp" => Box::new(Dcp::new()),
        "ish" => Box::new(Ish::new()),
        "ez" => Box::new(Ez::new()),
        "lc" => Box::new(Lc::new()),
        "cpop" => Box::new(Cpop::new()),
        "dsc-llb" => Box::new(BoundedDsc::new()),
        "bnb" => Box::new(BranchAndBound::new()),
        _ => return Err(format!("unknown algorithm `{name}`")),
    })
}

/// The schedulers with a model-generic entry point
/// (`schedule_with_model`), selected when a request or CLI invocation
/// carries an explicit communication cost model.
#[derive(Debug, Clone)]
pub enum ModelScheduler {
    /// FAST under an explicit model.
    Fast(Fast),
    /// ETF under an explicit model.
    Etf(Etf),
    /// DLS under an explicit model.
    Dls(Dls),
    /// HEFT under an explicit model.
    Heft(Heft),
}

impl ModelScheduler {
    /// Resolve a CLI algorithm name to its model-aware scheduler.
    pub fn by_name(name: &str) -> Result<ModelScheduler, String> {
        Ok(match name {
            "fast" => ModelScheduler::Fast(Fast::new()),
            "etf" => ModelScheduler::Etf(Etf::new()),
            "dls" => ModelScheduler::Dls(Dls::new()),
            "heft" => ModelScheduler::Heft(Heft::new()),
            _ => {
                return Err(format!(
                    "algorithm `{name}` has no communication-model path \
                     (use fast, etf, dls, or heft)"
                ))
            }
        })
    }

    /// Display name, matching [`Scheduler::name`].
    pub fn name(&self) -> &'static str {
        match self {
            ModelScheduler::Fast(_) => "FAST",
            ModelScheduler::Etf(_) => "ETF",
            ModelScheduler::Dls(_) => "DLS",
            ModelScheduler::Heft(_) => "HEFT",
        }
    }

    /// Schedule `dag` on `procs` processors under `model` (any
    /// [`CostModel`], e.g. a [`CommModel`] or a
    /// [`fastsched_schedule::MemoryCapacities`] wrapper).
    pub fn schedule_with_model<M: CostModel + ?Sized>(
        &self,
        dag: &Dag,
        procs: u32,
        model: &M,
    ) -> Schedule {
        match self {
            ModelScheduler::Fast(s) => s.schedule_with_model(dag, procs, model),
            ModelScheduler::Etf(s) => s.schedule_with_model(dag, procs, model),
            ModelScheduler::Dls(s) => s.schedule_with_model(dag, procs, model),
            ModelScheduler::Heft(s) => s.schedule_with_model(dag, procs, model),
        }
    }

    /// Whether this scheduler's probe loop honours per-processor
    /// memory capacities. Only memory-aware schedulers may run under a
    /// capacity-carrying model: a capacity-blind one (ETF, DLS) would
    /// hand the validation gate an over-capacity schedule and panic.
    pub fn is_memory_aware(&self) -> bool {
        matches!(self, ModelScheduler::Fast(_) | ModelScheduler::Heft(_))
    }
}

/// Service-layer knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Admission-queue capacity (pending requests beyond the ones
    /// workers are already running).
    pub queue_depth: usize,
    /// Default queue-wait deadline in milliseconds applied to
    /// requests that carry no `timeout_ms` of their own; 0 disables.
    pub default_timeout_ms: u64,
    /// Byte cap on one request line.
    pub max_line_bytes: usize,
    /// Cap on a request's processor count (explicit `procs`, or the
    /// `speeds` array length for heterogeneous requests). A request
    /// may always use up to its DAG's node count even above this cap
    /// — processors beyond the node count can never be used anyway —
    /// so the effective limit is `max(node_count, max_procs)`.
    /// Schedulers allocate O(procs) scratch, so this bound is what
    /// keeps a hostile one-line request from demanding gigabytes.
    pub max_procs: u32,
    /// Cap on the number of groups a hierarchical `comm` model may
    /// declare. The group *table* (one entry per processor) is
    /// already bounded by the processor limit; this bounds the group
    /// count itself, and is checked before the table is materialized.
    pub max_groups: u32,
    /// Record per-phase latency histograms (`false` = the
    /// `--no-metrics` overhead-measurement mode: no clock reads or
    /// histogram writes beyond what the response itself needs).
    pub metrics: bool,
    /// Bind a scrape listener here (e.g. `127.0.0.1:9460`) serving
    /// `GET /metrics` (Prometheus text) and `/metrics.json` on a
    /// dedicated thread. `None` = no listener.
    pub metrics_addr: Option<String>,
    /// Append a sampled NDJSON access log to this file.
    pub access_log: Option<std::path::PathBuf>,
    /// Log every Nth request (1 = all); only meaningful with
    /// [`ServeConfig::access_log`].
    pub log_sample_rate: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            queue_depth: 1024,
            default_timeout_ms: 0,
            max_line_bytes: protocol::DEFAULT_MAX_LINE,
            max_procs: DEFAULT_MAX_PROCS,
            max_groups: DEFAULT_MAX_GROUPS,
            metrics: true,
            metrics_addr: None,
            access_log: None,
            log_sample_rate: 1,
        }
    }
}

/// Lifetime totals returned by [`Server::run`].
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Schedule requests admitted.
    pub accepted: u64,
    /// Schedule requests rejected as `overloaded`.
    pub rejected: u64,
    /// Admitted requests answered `timeout`.
    pub timeouts: u64,
    /// Lines answered with a parse/oversize error.
    pub malformed: u64,
    /// Schedule requests answered successfully.
    pub completed: u64,
}

/// The request phases, in reporting order. `queue` is recorded for
/// every admitted request that reaches a worker (including ones
/// answered `timeout` — queue wait under saturation is exactly what
/// the phase exists to show); `schedule`/`serialize`/`write` only for
/// requests that performed them.
const PHASE_NAMES: [&str; 4] = ["queue", "schedule", "serialize", "write"];

/// One worker's metrics shard: written only by the owning pool
/// worker, so recording never contends; merged across workers at
/// scrape time ([`ServeStats::merged_phase`]).
struct WorkerCounters {
    requests: Counter,
    /// Indexed like [`PHASE_NAMES`].
    phase_us: [Histogram; 4],
}

/// Sampled NDJSON access log: one line per [`AccessLog::rate`]-th
/// request. The sampling decision is one relaxed counter increment;
/// only sampled requests pay the render + locked file append.
struct AccessLog {
    file: Mutex<std::fs::File>,
    seq: AtomicU64,
    rate: u64,
}

impl AccessLog {
    fn open(path: &std::path::Path, rate: u64) -> io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
            seq: AtomicU64::new(0),
            rate: rate.max(1),
        })
    }

    /// Log this request if it is a sampled one; `render` runs only
    /// when it is.
    fn log(&self, render: impl FnOnce() -> String) {
        if !self
            .seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.rate)
        {
            return;
        }
        let mut line = render();
        line.push('\n');
        let mut f = self.file.lock().expect("access log lock");
        let _ = f.write_all(line.as_bytes());
    }
}

/// Render one access-log NDJSON line.
#[allow(clippy::too_many_arguments)]
fn access_line(
    id: u64,
    algo: &str,
    nodes: usize,
    procs: u32,
    outcome: &str,
    phase_us: [u64; 4],
) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    format!(
        "{{\"ts_ms\":{ts_ms},\"id\":{id},\"algo\":\"{}\",\"nodes\":{nodes},\"procs\":{procs},\
         \"outcome\":\"{outcome}\",\"queue_us\":{},\"schedule_us\":{},\"serialize_us\":{},\
         \"write_us\":{}}}",
        protocol::json_escape(algo),
        phase_us[0],
        phase_us[1],
        phase_us[2],
        phase_us[3],
    )
}

/// All serve-side metrics. Counters, gauges and histograms are
/// `Relaxed` throughout — see the ordering note in the
/// [module docs](self).
struct ServeStats {
    accepted: Counter,
    rejected: Counter,
    timeouts: Counter,
    malformed: Counter,
    completed: Counter,
    /// Connections accepted over the server's lifetime.
    connections: Counter,
    /// Connections currently open.
    conns_live: Gauge,
    /// Admitted requests not yet answered. The shutdown drain spins
    /// on this reaching zero.
    in_flight: Gauge,
    /// Per-worker shards, indexed by pool worker.
    workers: Vec<WorkerCounters>,
    /// Per-algorithm completion counters, indexed like [`ALGO_NAMES`].
    /// Incremented alongside `completed`, so their sum equals it.
    algos: Vec<Counter>,
    start: Instant,
    host_cores: usize,
    /// Phase histograms enabled ([`ServeConfig::metrics`]).
    timing: bool,
    access: Option<AccessLog>,
}

impl ServeStats {
    fn new(threads: usize, timing: bool, access: Option<AccessLog>) -> Self {
        Self {
            accepted: Counter::new(),
            rejected: Counter::new(),
            timeouts: Counter::new(),
            malformed: Counter::new(),
            completed: Counter::new(),
            connections: Counter::new(),
            conns_live: Gauge::new(),
            in_flight: Gauge::new(),
            workers: (0..threads)
                .map(|_| WorkerCounters {
                    requests: Counter::new(),
                    phase_us: std::array::from_fn(|_| Histogram::new()),
                })
                .collect(),
            algos: ALGO_NAMES.iter().map(|_| Counter::new()).collect(),
            start: Instant::now(),
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            timing,
            access,
        }
    }

    /// Whether phase timestamps need to be taken at all (histograms
    /// on, or an access log that wants the numbers).
    fn wants_timings(&self) -> bool {
        self.timing || self.access.is_some()
    }

    /// Phase `p`'s latency distribution merged across all workers.
    fn merged_phase(&self, p: usize) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for w in &self.workers {
            out.merge(&w.phase_us[p].snapshot());
        }
        out
    }

    fn uptime_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    fn snapshot(&self, id: u64, queue_depth: usize) -> StatsSnapshot {
        // Read sinks before their sources (`completed` before
        // `accepted`; `in_flight` last) so the usual inequalities
        // (completed <= accepted, in_flight consistent with both)
        // hold in practice even though the snapshot is a statistical
        // sample, not a synchronized cut.
        let completed = self.completed.get();
        let timeouts = self.timeouts.get();
        let rejected = self.rejected.get();
        let malformed = self.malformed.get();
        let accepted = self.accepted.get();
        let in_flight = self.in_flight.get();
        let phases = if self.timing {
            PHASE_NAMES
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let h = self.merged_phase(i);
                    PhaseSnapshot {
                        phase: (*name).to_string(),
                        count: h.count(),
                        p50_us: h.quantile(0.50),
                        p99_us: h.quantile(0.99),
                        p999_us: h.quantile(0.999),
                        mean_us: h.mean(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        StatsSnapshot {
            id,
            threads: self.workers.len(),
            queue_depth,
            accepted,
            rejected,
            timeouts,
            malformed,
            completed,
            in_flight,
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    // The schedule-phase histogram is the old
                    // "service time" — same quantity the retired
                    // sample ring reported, now over every request.
                    let h = w.phase_us[1].snapshot();
                    WorkerSnapshot {
                        worker: i,
                        requests: w.requests.get(),
                        p50_us: h.quantile(0.50),
                        p99_us: h.quantile(0.99),
                    }
                })
                .collect(),
            host_cores: self.host_cores,
            uptime_s: self.uptime_s(),
            phases,
        }
    }
}

/// SIGINT flips this; [`Server::run`] polls it alongside its own
/// shutdown flag.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that requests a graceful drain-and-exit
/// of every [`Server::run`] loop in the process. Safe to call more
/// than once; a no-op on non-Unix targets.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        // The process already links libc; declare `signal(2)` directly
        // rather than growing a dependency. The handler only performs
        // an atomic store, which is async-signal-safe.
        type Handler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: Handler) -> usize;
        }
        extern "C" fn on_sigint(_sig: i32) {
            SIGINT_SEEN.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// What a worker needs to answer one admitted request. Built on the
/// connection thread so workers do nothing but schedule and write.
struct PreparedRequest {
    id: u64,
    dag: Dag,
    procs: u32,
    engine: Engine,
    deadline: Option<Duration>,
    enqueued: Instant,
    /// Index into [`ALGO_NAMES`] / the per-algo counters.
    algo_idx: usize,
}

enum Engine {
    /// Homogeneous: any registered scheduler, through the
    /// zero-alloc `schedule_into` path.
    Homogeneous(Box<dyn Scheduler>),
    /// Heterogeneous speeds: HEFT over unequal processors.
    Hetero(HeftHetero),
    /// Explicit communication model: the model-generic (allocating)
    /// `schedule_with_model` path.
    Comm(ModelScheduler, CommModel),
    /// Memory-constrained: a per-processor capacity table over a
    /// communication model (`Ideal` when the request priced none),
    /// served by a memory-aware scheduler (`fast`, `heft`) whose probe
    /// loops reject over-capacity placements.
    Mem(ModelScheduler, MemoryCapacities<CommModel>),
}

/// The `casch serve` server. [`Server::bind`] then [`Server::run`];
/// `run` blocks until SIGINT or an `op:"shutdown"` request, drains,
/// and returns the lifetime totals.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:4800`; port 0 picks a free
    /// port — read it back with [`Server::local_addr`]). Also binds
    /// the scrape listener when [`ServeConfig::metrics_addr`] is set
    /// (read it back with [`Server::metrics_addr`]).
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let metrics_listener = match &config.metrics_addr {
            Some(maddr) => Some(TcpListener::bind(maddr.as_str())?),
            None => None,
        };
        Ok(Server {
            listener,
            metrics_listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound scrape address, when a metrics listener exists.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// A flag that requests a graceful shutdown when set (what the
    /// protocol's `op:"shutdown"` flips; tests use it directly).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until shutdown, then drain and report. See the
    /// [module docs](self) for the architecture.
    pub fn run(self) -> io::Result<ServeSummary> {
        let Server {
            listener,
            metrics_listener,
            config,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        // The pool's own instrumentation mirrors the serve-level
        // `metrics` switch, so `--no-metrics` removes every clock
        // read on the hot path.
        let pool = Arc::new(WorkerPool::with_metrics(
            threads,
            config.queue_depth,
            config.metrics,
        ));
        let access = match &config.access_log {
            Some(path) => Some(AccessLog::open(path, config.log_sample_rate)?),
            None => None,
        };
        let stats = Arc::new(ServeStats::new(pool.threads(), config.metrics, access));
        // The scrape listener gets its own dedicated thread — never a
        // pool worker — so /metrics keeps answering while the pool is
        // saturated or wedged.
        let scrape_thread = metrics_listener.map(|ml| {
            let stats = Arc::clone(&stats);
            let pool = Arc::clone(&pool);
            let shutdown = Arc::clone(&shutdown);
            let queue_depth = config.queue_depth;
            std::thread::spawn(move || scrape_loop(&ml, &stats, &pool, queue_depth, &shutdown))
        });
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();

        while !shutdown.load(Ordering::SeqCst) && !SIGINT_SEEN.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stats.connections.inc();
                    stats.conns_live.inc();
                    let ctx = ConnCtx {
                        pool: Arc::clone(&pool),
                        stats: Arc::clone(&stats),
                        shutdown: Arc::clone(&shutdown),
                        config: config.clone(),
                    };
                    conns.push(std::thread::spawn(move || {
                        let stats = Arc::clone(&ctx.stats);
                        let _ = handle_connection(stream, ctx);
                        stats.conns_live.dec();
                    }));
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        shutdown.store(true, Ordering::SeqCst);

        // Drain: connection threads observe the flag within one read
        // timeout; queued jobs keep their connection's writer alive
        // through its Arc, so every admitted request still gets its
        // response before the pool joins.
        for h in conns {
            let _ = h.join();
        }
        pool.shutdown();
        if let Some(h) = scrape_thread {
            let _ = h.join();
        }
        Ok(ServeSummary {
            connections: stats.connections.get(),
            accepted: stats.accepted.get(),
            rejected: stats.rejected.get(),
            timeouts: stats.timeouts.get(),
            malformed: stats.malformed.get(),
            completed: stats.completed.get(),
        })
    }
}

struct ConnCtx {
    pool: Arc<WorkerPool>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
}

/// The write half of one connection: serializes whole response lines
/// (shared between the reader thread — errors, stats — and workers —
/// schedules), and turns a client that vanished or stopped reading
/// into a dead connection instead of a blocked worker.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> io::Result<ConnWriter> {
        // Bound every response write: if the client stops draining the
        // socket, `write_all` errors out after WRITE_TIMEOUT instead
        // of parking a pool worker forever on a full send buffer.
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        })
    }

    /// Write one whole response line. A vanished client is not a
    /// server error: on any write failure (including a timeout) the
    /// response is dropped, the connection is marked dead so later
    /// writes become no-ops, and the socket is shut down so the
    /// reader side unblocks and reaps the connection.
    fn write_line(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.stream.lock().expect("writer lock");
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        if w.write_all(line.as_bytes())
            .and_then(|_| w.write_all(b"\n"))
            .is_err()
        {
            self.dead.store(true, Ordering::Relaxed);
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Whether a write has failed (client gone or unresponsive).
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

fn handle_connection(stream: TcpStream, ctx: ConnCtx) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let writer = Arc::new(ConnWriter::new(stream.try_clone()?)?);
    let mut reader = LineReader::new(BufReader::new(stream), ctx.config.max_line_bytes);
    let mut line_no: u64 = 0;

    loop {
        let line = match reader.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let text = match line {
            Line::TooLong(bytes) => {
                line_no += 1;
                ctx.stats.malformed.inc();
                let resp = Response::Error {
                    id: line_no,
                    error: format!(
                        "line exceeds {} bytes (got {bytes})",
                        ctx.config.max_line_bytes
                    ),
                };
                writer.write_line(&resp.to_line());
                continue;
            }
            Line::Text(text) => text,
        };
        if text.trim().is_empty() {
            continue;
        }
        line_no += 1;
        match Request::parse(&text, line_no) {
            Err(error) => {
                ctx.stats.malformed.inc();
                writer.write_line(&Response::Error { id: line_no, error }.to_line());
            }
            Ok(Request::Stats { id }) => {
                let snap = ctx.stats.snapshot(id, ctx.config.queue_depth);
                writer.write_line(&Response::Stats(snap).to_line());
            }
            Ok(Request::Shutdown { id }) => {
                ctx.shutdown.store(true, Ordering::SeqCst);
                // Drain before acknowledging: the ack promises that
                // every previously admitted request has its response.
                // (Relaxed is enough: the gauge's own modification
                // order is monotone toward zero once admissions stop,
                // and stores become visible eventually.)
                while ctx.stats.in_flight.get() > 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let resp = Response::Shutdown {
                    id,
                    completed: ctx.stats.completed.get(),
                };
                writer.write_line(&resp.to_line());
                break;
            }
            Ok(Request::Schedule(req)) => {
                let id = req.id;
                match prepare(req, &ctx.config) {
                    Err(error) => {
                        ctx.stats.malformed.inc();
                        writer.write_line(&Response::Error { id, error }.to_line());
                    }
                    Ok(prepared) => {
                        // Count as in-flight *before* submitting so the
                        // shutdown drain can never miss it.
                        ctx.stats.in_flight.inc();
                        let algo_idx = prepared.algo_idx;
                        let nodes = prepared.dag.node_count();
                        let procs = prepared.procs;
                        let stats = Arc::clone(&ctx.stats);
                        let job_writer = Arc::clone(&writer);
                        let job: fastsched_algorithms::pool::Job = Box::new(move |worker, ws| {
                            process(prepared, worker, ws, &stats, &job_writer);
                        });
                        match ctx.pool.try_submit(job) {
                            Ok(()) => {
                                ctx.stats.accepted.inc();
                            }
                            Err(_rejected_job) => {
                                ctx.stats.in_flight.dec();
                                ctx.stats.rejected.inc();
                                if let Some(log) = &ctx.stats.access {
                                    log.log(|| {
                                        access_line(
                                            id,
                                            ALGO_NAMES[algo_idx],
                                            nodes,
                                            procs,
                                            "rejected",
                                            [0; 4],
                                        )
                                    });
                                }
                                let resp = Response::Error {
                                    id,
                                    error: "overloaded".to_string(),
                                };
                                writer.write_line(&resp.to_line());
                            }
                        }
                    }
                }
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) || writer.is_dead() {
            break;
        }
    }
    Ok(())
}

/// Build a [`CommModel`] from wire spec data, enforcing the server's
/// group and processor caps *before* the group table is materialized.
fn build_comm(spec: CommSpec, config: &ServeConfig, proc_limit: u64) -> Result<CommModel, String> {
    match spec {
        CommSpec::Ideal => Ok(CommModel::Ideal),
        CommSpec::AlphaBeta {
            alpha,
            beta_num,
            beta_den,
        } => AlphaBeta::try_new(alpha, beta_num, beta_den)
            .map(CommModel::AlphaBeta)
            .map_err(|e| format!("parse: comm: {e}")),
        CommSpec::Hier {
            groups,
            intra,
            inter,
        } => {
            let max_groups = config.max_groups.max(1);
            if groups.len() as u64 > u64::from(max_groups) {
                return Err(format!(
                    "parse: `comm.groups` lists {} group(s), above the server's \
                     group limit ({max_groups}); raise --max-groups if intended",
                    groups.len()
                ));
            }
            let total: u64 = groups.iter().map(|&s| u64::from(s)).sum();
            if total > proc_limit {
                return Err(format!(
                    "parse: hier group table covers {total} processor(s), above the \
                     server's processor limit ({proc_limit}); raise --max-procs if intended"
                ));
            }
            let intra = AlphaBeta::try_new(intra[0], intra[1], intra[2])
                .map_err(|e| format!("parse: comm.intra: {e}"))?;
            let inter = AlphaBeta::try_new(inter[0], inter[1], inter[2])
                .map_err(|e| format!("parse: comm.inter: {e}"))?;
            Hierarchical::from_group_sizes(&groups, intra, inter)
                .map(CommModel::Hierarchical)
                .map_err(|e| format!("parse: comm: {e}"))
        }
    }
}

/// Validate a schedule request into a ready-to-run job payload.
fn prepare(req: ScheduleRequest, config: &ServeConfig) -> Result<PreparedRequest, String> {
    let dag = req.dag.build().map_err(|e| format!("parse: dag: {e}"))?;
    // Schedulers allocate O(procs) scratch, so a client-controlled
    // processor count must be bounded before it reaches a worker: up
    // to the DAG's own node count always (more can never be used), or
    // the configured cap, whichever is larger.
    let proc_limit = (dag.node_count() as u64).max(u64::from(config.max_procs.max(1)));
    let algo_idx = match req.speeds {
        Some(_) => ALGO_NAMES.len() - 1,
        None => algo_index(&req.algo),
    };
    let (engine, procs) = match (req.speeds, req.comm) {
        (Some(_), Some(_)) => {
            return Err(
                "parse: `comm` cannot be combined with `speeds` (pick one machine model)"
                    .to_string(),
            )
        }
        (Some(speeds), None) => {
            if req.algo != "heft" {
                return Err(format!(
                    "parse: `speeds` requires algo `heft` (heterogeneous HEFT), got `{}`",
                    req.algo
                ));
            }
            if speeds.len() as u64 > proc_limit {
                return Err(format!(
                    "parse: `speeds` length ({}) exceeds the server's processor limit \
                     ({proc_limit}); raise --max-procs if intended",
                    speeds.len()
                ));
            }
            let n = speeds.len() as u32;
            if let Some(p) = req.procs {
                if p != n {
                    return Err(format!(
                        "parse: `procs` ({p}) disagrees with `speeds` length ({n})"
                    ));
                }
            }
            let speeds =
                ProcessorSpeeds::try_new(speeds).map_err(|e| format!("parse: speeds: {e}"))?;
            (Engine::Hetero(HeftHetero::new(speeds)), n)
        }
        (None, Some(comm)) => {
            let scheduler =
                ModelScheduler::by_name(&req.algo).map_err(|e| format!("parse: {e}"))?;
            let model = build_comm(comm, config, proc_limit)?;
            let procs = match model.required_procs() {
                // A hierarchical model prices every processor through
                // its group table, so the request must run on exactly
                // the processors the table covers.
                Some(n) => {
                    if let Some(p) = req.procs {
                        if p != n {
                            return Err(format!(
                                "parse: `procs` ({p}) disagrees with the hier group \
                                 table ({n} processor(s))"
                            ));
                        }
                    }
                    n
                }
                None => {
                    if let Some(p) = req.procs {
                        if u64::from(p) > proc_limit {
                            return Err(format!(
                                "parse: `procs` ({p}) exceeds the server's processor limit \
                                 ({proc_limit}); raise --max-procs if intended"
                            ));
                        }
                    }
                    req.procs.unwrap_or_else(|| dag.node_count().max(1) as u32)
                }
            };
            (Engine::Comm(scheduler, model), procs)
        }
        (None, None) => {
            let scheduler = scheduler_by_name(&req.algo).map_err(|e| format!("parse: {e}"))?;
            if let Some(p) = req.procs {
                if u64::from(p) > proc_limit {
                    return Err(format!(
                        "parse: `procs` ({p}) exceeds the server's processor limit \
                         ({proc_limit}); raise --max-procs if intended"
                    ));
                }
            }
            let procs = req.procs.unwrap_or_else(|| dag.node_count().max(1) as u32);
            (Engine::Homogeneous(scheduler), procs)
        }
    };
    // A capacity table turns any engine except heterogeneous HEFT into
    // the memory-aware model path. Per-processor tables are length-
    // checked against the server cap *before* `resolve` materializes
    // anything, mirroring the `speeds` admission rule.
    let (engine, procs) = match req.mem_caps {
        None => (engine, procs),
        Some(spec) => {
            let procs = match &spec {
                MemCapsSpec::PerProc(caps) => {
                    let n = caps.len() as u32;
                    if caps.len() as u64 > proc_limit {
                        return Err(format!(
                            "parse: `mem_caps` lists {} capacities, above the server's \
                             processor limit ({proc_limit}); raise --max-procs if intended",
                            caps.len()
                        ));
                    }
                    if let Some(p) = req.procs {
                        if p != n {
                            return Err(format!(
                                "parse: `procs` ({p}) disagrees with `mem_caps` length ({n})"
                            ));
                        }
                    } else if let Engine::Comm(_, model) = &engine {
                        if let Some(h) = model.required_procs() {
                            if h != n {
                                return Err(format!(
                                    "parse: `mem_caps` length ({n}) disagrees with the \
                                     hier group table ({h} processor(s))"
                                ));
                            }
                        }
                    }
                    n
                }
                MemCapsSpec::Uniform(_) => procs,
            };
            let (scheduler, inner) = match engine {
                Engine::Hetero(_) => {
                    return Err(
                        "parse: `mem_caps` cannot be combined with `speeds` (memory-aware \
                         scheduling runs on the homogeneous and communication machine models)"
                            .to_string(),
                    )
                }
                Engine::Comm(s, model) => (s, model),
                Engine::Homogeneous(_) => {
                    let s = ModelScheduler::by_name(&req.algo).map_err(|_| {
                        format!(
                            "parse: algorithm `{}` has no memory-aware path (use fast or heft)",
                            req.algo
                        )
                    })?;
                    (s, CommModel::Ideal)
                }
                Engine::Mem(..) => unreachable!("the memory engine is only built here"),
            };
            if !scheduler.is_memory_aware() {
                return Err(format!(
                    "parse: algorithm `{}` has no memory-aware path (use fast or heft)",
                    req.algo
                ));
            }
            let model = MemoryCapacities::new(inner, spec.resolve(procs));
            (Engine::Mem(scheduler, model), procs)
        }
    };
    let timeout_ms = req.timeout_ms.unwrap_or(config.default_timeout_ms);
    Ok(PreparedRequest {
        id: req.id,
        dag,
        procs,
        engine,
        deadline: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        enqueued: Instant::now(),
        algo_idx,
    })
}

/// Settles one admitted request however its job exits: decrements
/// `in_flight` exactly once (so the shutdown drain can never hang on
/// a lost request), and — if the job unwound before writing its
/// response (a scheduler panicking on hostile input; the pool catches
/// the panic and keeps the worker) — still answers the client with a
/// stable `internal:` error line.
struct ResponseGuard<'a> {
    stats: &'a ServeStats,
    writer: &'a ConnWriter,
    id: u64,
    answered: bool,
    /// Request identity for the access log's `internal` line when the
    /// job unwinds before answering.
    algo_idx: usize,
    nodes: usize,
    procs: u32,
}

impl Drop for ResponseGuard<'_> {
    fn drop(&mut self) {
        if !self.answered {
            let resp = Response::Error {
                id: self.id,
                error: "internal: scheduler panicked".to_string(),
            };
            self.writer.write_line(&resp.to_line());
            if let Some(log) = &self.stats.access {
                log.log(|| {
                    access_line(
                        self.id,
                        ALGO_NAMES[self.algo_idx],
                        self.nodes,
                        self.procs,
                        "internal",
                        [0; 4],
                    )
                });
            }
        }
        self.stats.in_flight.dec();
    }
}

/// Worker-side execution of one admitted request: schedule,
/// serialize, write — with each phase (plus the preceding queue wait)
/// timed into the worker's shard when metrics are on.
fn process(
    req: PreparedRequest,
    worker: usize,
    ws: &mut fastsched_algorithms::Workspace,
    stats: &ServeStats,
    writer: &ConnWriter,
) {
    let mut guard = ResponseGuard {
        stats,
        writer,
        id: req.id,
        answered: false,
        algo_idx: req.algo_idx,
        nodes: req.dag.node_count(),
        procs: req.procs,
    };
    let shard = &stats.workers[worker];
    let detail = stats.wants_timings();
    let waited = req.enqueued.elapsed();
    let queue_us = waited.as_micros().min(u64::MAX as u128) as u64;
    if stats.timing {
        shard.phase_us[0].record(queue_us);
    }
    if req.deadline.is_some_and(|d| waited > d) {
        stats.timeouts.inc();
        let resp = Response::Error {
            id: req.id,
            error: "timeout".to_string(),
        };
        writer.write_line(&resp.to_line());
        guard.answered = true;
        if let Some(log) = &stats.access {
            log.log(|| {
                access_line(
                    req.id,
                    ALGO_NAMES[req.algo_idx],
                    req.dag.node_count(),
                    req.procs,
                    "timeout",
                    [queue_us, 0, 0, 0],
                )
            });
        }
        return;
    }
    let t0 = Instant::now();
    let (name, schedule) = match &req.engine {
        Engine::Homogeneous(s) => (s.name(), s.schedule_into(&req.dag, req.procs, ws)),
        Engine::Hetero(h) => ("HEFT-hetero", h.schedule(&req.dag)),
        Engine::Comm(s, model) => (s.name(), s.schedule_with_model(&req.dag, req.procs, model)),
        Engine::Mem(s, model) => (s.name(), s.schedule_with_model(&req.dag, req.procs, model)),
    };
    let t1 = Instant::now();
    // `service_us` in the response is the schedule phase — the same
    // quantity it has always carried.
    let service_us = t1.duration_since(t0).as_micros().min(u64::MAX as u128) as u64;
    let resp =
        ScheduleResponse::from_schedule(req.id, name, req.procs, &schedule, queue_us, service_us);
    let line = Response::Schedule(resp).to_line();
    // The serialize/write split costs two extra clock reads, so it is
    // taken only when histograms or the access log want the numbers.
    let t2 = detail.then(Instant::now);
    writer.write_line(&line);
    let (serialize_us, write_us) = match t2 {
        Some(t2) => (
            t2.duration_since(t1).as_micros() as u64,
            t2.elapsed().as_micros() as u64,
        ),
        None => (0, 0),
    };
    guard.answered = true;
    // Recycle the result so the worker's steady state stays
    // allocation-free once its spare pool is warm.
    if let Engine::Homogeneous(_) = req.engine {
        ws.recycle(schedule);
    }
    shard.requests.inc();
    if stats.timing {
        shard.phase_us[1].record(service_us);
        shard.phase_us[2].record(serialize_us);
        shard.phase_us[3].record(write_us);
    }
    stats.algos[req.algo_idx].inc();
    stats.completed.inc();
    if let Some(log) = &stats.access {
        log.log(|| {
            access_line(
                req.id,
                ALGO_NAMES[req.algo_idx],
                req.dag.node_count(),
                req.procs,
                "ok",
                [queue_us, service_us, serialize_us, write_us],
            )
        });
    }
}

// ---------------------------------------------------- scrape listener

/// Accept loop for the metrics listener. Requests are one line and
/// responses render from lock-free snapshots, so connections are
/// served serially on this one dedicated thread; read/write timeouts
/// bound the damage a stalled scraper can do, and a saturated worker
/// pool cannot delay a scrape at all.
fn scrape_loop(
    listener: &TcpListener,
    stats: &ServeStats,
    pool: &WorkerPool,
    queue_depth: usize,
    shutdown: &AtomicBool,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) && !SIGINT_SEEN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = serve_scrape(stream, stats, pool, queue_depth);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Answer one scrape connection: a minimal HTTP/1.1 exchange
/// (`GET /metrics` → Prometheus text, `GET /metrics.json` → the same
/// line `op:"stats"` would return), then close.
fn serve_scrape(
    mut stream: TcpStream,
    stats: &ServeStats,
    pool: &WorkerPool,
    queue_depth: usize,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    // Read the request head (bounded); everything routing needs is in
    // the request line.
    let mut head = [0u8; 4096];
    let mut n = 0;
    while n < head.len() {
        match stream.read(&mut head[n..]) {
            Ok(0) => break,
            Ok(r) => {
                n += r;
                if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head[..n]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                CONTENT_TYPE,
                render_exposition(stats, pool, queue_depth),
            ),
            "/metrics.json" => {
                let mut line = Response::Stats(stats.snapshot(0, queue_depth)).to_line();
                line.push('\n');
                ("200 OK", "application/json", line)
            }
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Render the full Prometheus exposition page from the serve and
/// pool registries.
fn render_exposition(stats: &ServeStats, pool: &WorkerPool, queue_depth: usize) -> String {
    let mut exp = Exposition::new();
    exp.gauge("casch_uptime_seconds", "Seconds since the server started.")
        .sample(&[], stats.uptime_s());
    exp.gauge("casch_host_cores", "CPU cores on the serving host.")
        .sample(&[], stats.host_cores as u64);
    exp.gauge("casch_threads", "Pool worker threads.")
        .sample(&[], stats.workers.len() as u64);
    exp.gauge("casch_queue_capacity", "Admission-queue capacity.")
        .sample(&[], queue_depth as u64);
    exp.gauge("casch_queue_depth", "Jobs waiting in the admission queue.")
        .sample(&[], pool.queued() as u64);
    exp.gauge("casch_in_flight", "Admitted requests not yet answered.")
        .sample(&[], stats.in_flight.get());
    exp.gauge("casch_connections_live", "Open client connections.")
        .sample(&[], stats.conns_live.get());
    exp.counter("casch_connections_total", "Connections accepted.")
        .sample(&[], stats.connections.get());
    exp.counter(
        "casch_requests_accepted_total",
        "Schedule requests admitted to the queue.",
    )
    .sample(&[], stats.accepted.get());
    exp.counter(
        "casch_requests_rejected_total",
        "Schedule requests rejected by admission control.",
    )
    .sample(&[], stats.rejected.get());
    exp.counter(
        "casch_requests_timeout_total",
        "Admitted requests answered `timeout`.",
    )
    .sample(&[], stats.timeouts.get());
    exp.counter(
        "casch_lines_malformed_total",
        "Lines answered with a parse or oversize error.",
    )
    .sample(&[], stats.malformed.get());
    {
        let mut fam = exp.counter(
            "casch_requests_total",
            "Schedule requests completed, by algorithm; sums to `completed`.",
        );
        for (i, name) in ALGO_NAMES.iter().enumerate() {
            let v = stats.algos[i].get();
            if v > 0 {
                fam.sample(&[("algo", name)], v);
            }
        }
    }
    {
        let mut fam = exp.counter(
            "casch_worker_requests_total",
            "Schedule requests completed, by pool worker.",
        );
        for (i, w) in stats.workers.iter().enumerate() {
            let label = i.to_string();
            fam.sample(&[("worker", &label)], w.requests.get());
        }
    }
    {
        let mut fam = exp.histogram(
            "casch_phase_latency_us",
            "Per-phase request latency in microseconds, merged across workers.",
        );
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            fam.series(&[("phase", name)], &stats.merged_phase(i));
        }
    }
    let pm = pool.metrics();
    exp.histogram(
        "casch_pool_queue_latency_us",
        "Microseconds jobs spent in the pool queue (enqueue to pop).",
    )
    .series(&[], &pm.merged_queue_us());
    exp.histogram(
        "casch_pool_job_latency_us",
        "Microseconds jobs spent running on a pool worker.",
    )
    .series(&[], &pm.merged_run_us());
    exp.finish()
}
