//! `casch serve` — a persistent NDJSON-over-TCP scheduling service.
//!
//! The front-end of the zero-alloc batch core (DESIGN.md §14): a
//! [`Server`] accepts connections, parses one [`crate::protocol::Request`]
//! per line, and shards admitted requests across a fixed
//! [`fastsched_algorithms::WorkerPool`] whose workers each own a
//! pinned [`fastsched_algorithms::Workspace`] — so the warm
//! scheduling path inside a worker stays allocation-free while the
//! protocol layer pays only per-request I/O.
//!
//! The service layer around the pool:
//!
//! * **Admission control** — the pool queue is bounded
//!   ([`ServeConfig::queue_depth`]); a full queue answers
//!   `{"ok":false,"error":"overloaded"}` immediately instead of
//!   buffering without bound.
//! * **Per-request timeouts** — a request that waits in the queue past
//!   its deadline ([`ServeConfig::default_timeout_ms`] or the
//!   request's own `timeout_ms`) is answered
//!   `{"ok":false,"error":"timeout"}` without being scheduled; a
//!   request that has *started* always runs to completion (the
//!   scheduling core is not preemptible).
//! * **Resource caps** — a request line is bounded
//!   ([`ServeConfig::max_line_bytes`]), and so is the processor count
//!   a request may demand ([`ServeConfig::max_procs`], floored by the
//!   DAG's own node count): schedulers allocate O(procs) scratch, so
//!   an uncapped `procs` (or hetero `speeds` array) would let one
//!   tiny line force a multi-GB allocation. Oversized values are
//!   answered with a `parse:` error instead.
//! * **Graceful shutdown** — SIGINT (via
//!   [`install_sigint_handler`]) or an `op:"shutdown"` request stops
//!   the accept loop, drains every admitted request to a response,
//!   then joins the workers. Accepted work is never abandoned.
//! * **Counters** — accepted/rejected/timeout/malformed/completed
//!   totals plus per-worker request counts and p50/p99 service times
//!   over a sliding window, served inline by `op:"stats"`.
//!
//! Responses to pipelined requests are written by the worker that
//! finished them, so they may interleave out of order; the `id` field
//! correlates. Every response is one `write_all` of a whole line
//! under the connection's write lock, so lines never interleave
//! mid-byte. Writes carry a timeout (`WRITE_TIMEOUT`, 10 s): a client
//! that stops reading while the socket buffer is full can stall a
//! worker for at most that long before its connection is declared
//! dead and closed — it can never pin a worker (or wedge the
//! shutdown drain) forever.

use crate::protocol::{
    self, Line, LineReader, Request, Response, ScheduleRequest, ScheduleResponse, StatsSnapshot,
    WorkerSnapshot,
};
use fastsched_algorithms::{
    BoundedDsc, BranchAndBound, Cpop, Dcp, Dls, Dsc, Etf, Ez, Fast, FastParallel, FastSa, Heft,
    HeftHetero, Hlfet, Ish, Lc, Mcp, Md, ProcessorSpeeds, Scheduler, WorkerPool,
};
use fastsched_dag::Dag;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-worker latency window: enough samples for a stable p99 at a
/// bounded, allocation-free-after-warmup memory cost.
const LATENCY_WINDOW: usize = 4096;

/// How often blocked loops (accept, reads, drain) re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// How long one response write may block before the client is
/// declared vanished and the connection is torn down. Generous —
/// responses are small, so a healthy client drains the socket buffer
/// in well under this — but finite, so a slow consumer bounds the
/// time it can hold a pool worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default [`ServeConfig::max_procs`]: far above any sensible
/// homogeneous machine while keeping the per-request O(procs) scratch
/// in the hundreds of KB.
pub const DEFAULT_MAX_PROCS: u32 = 16_384;

/// Resolve an algorithm name (the CLI vocabulary) to a scheduler.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "fast" => Box::new(Fast::new()),
        "dsc" => Box::new(Dsc::new()),
        "md" => Box::new(Md::new()),
        "etf" => Box::new(Etf::new()),
        "dls" => Box::new(Dls::new()),
        "hlfet" => Box::new(Hlfet::new()),
        "mcp" => Box::new(Mcp::new()),
        "heft" => Box::new(Heft::new()),
        "fast-ms" => Box::new(FastParallel::new()),
        "fast-sa" => Box::new(FastSa::new()),
        "dcp" => Box::new(Dcp::new()),
        "ish" => Box::new(Ish::new()),
        "ez" => Box::new(Ez::new()),
        "lc" => Box::new(Lc::new()),
        "cpop" => Box::new(Cpop::new()),
        "dsc-llb" => Box::new(BoundedDsc::new()),
        "bnb" => Box::new(BranchAndBound::new()),
        _ => return Err(format!("unknown algorithm `{name}`")),
    })
}

/// Service-layer knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Admission-queue capacity (pending requests beyond the ones
    /// workers are already running).
    pub queue_depth: usize,
    /// Default queue-wait deadline in milliseconds applied to
    /// requests that carry no `timeout_ms` of their own; 0 disables.
    pub default_timeout_ms: u64,
    /// Byte cap on one request line.
    pub max_line_bytes: usize,
    /// Cap on a request's processor count (explicit `procs`, or the
    /// `speeds` array length for heterogeneous requests). A request
    /// may always use up to its DAG's node count even above this cap
    /// — processors beyond the node count can never be used anyway —
    /// so the effective limit is `max(node_count, max_procs)`.
    /// Schedulers allocate O(procs) scratch, so this bound is what
    /// keeps a hostile one-line request from demanding gigabytes.
    pub max_procs: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            queue_depth: 1024,
            default_timeout_ms: 0,
            max_line_bytes: protocol::DEFAULT_MAX_LINE,
            max_procs: DEFAULT_MAX_PROCS,
        }
    }
}

/// Lifetime totals returned by [`Server::run`].
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Schedule requests admitted.
    pub accepted: u64,
    /// Schedule requests rejected as `overloaded`.
    pub rejected: u64,
    /// Admitted requests answered `timeout`.
    pub timeouts: u64,
    /// Lines answered with a parse/oversize error.
    pub malformed: u64,
    /// Schedule requests answered successfully.
    pub completed: u64,
}

struct WorkerCounters {
    requests: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// (p50, p99) over the window, in µs.
    fn percentiles(&self) -> (u64, u64) {
        if self.samples.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        (at(0.50), at(0.99))
    }
}

struct ServeStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    malformed: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    connections: AtomicU64,
    workers: Vec<WorkerCounters>,
}

impl ServeStats {
    fn new(threads: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            workers: (0..threads)
                .map(|_| WorkerCounters {
                    requests: AtomicU64::new(0),
                    latencies: Mutex::new(LatencyRing {
                        samples: Vec::new(),
                        next: 0,
                    }),
                })
                .collect(),
        }
    }

    fn snapshot(&self, id: u64, queue_depth: usize) -> StatsSnapshot {
        StatsSnapshot {
            id,
            threads: self.workers.len(),
            queue_depth,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let (p50_us, p99_us) = w.latencies.lock().expect("latency lock").percentiles();
                    WorkerSnapshot {
                        worker: i,
                        requests: w.requests.load(Ordering::Relaxed),
                        p50_us,
                        p99_us,
                    }
                })
                .collect(),
        }
    }
}

/// SIGINT flips this; [`Server::run`] polls it alongside its own
/// shutdown flag.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that requests a graceful drain-and-exit
/// of every [`Server::run`] loop in the process. Safe to call more
/// than once; a no-op on non-Unix targets.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        // The process already links libc; declare `signal(2)` directly
        // rather than growing a dependency. The handler only performs
        // an atomic store, which is async-signal-safe.
        type Handler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: Handler) -> usize;
        }
        extern "C" fn on_sigint(_sig: i32) {
            SIGINT_SEEN.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// What a worker needs to answer one admitted request. Built on the
/// connection thread so workers do nothing but schedule and write.
struct PreparedRequest {
    id: u64,
    dag: Dag,
    procs: u32,
    engine: Engine,
    deadline: Option<Duration>,
    enqueued: Instant,
}

enum Engine {
    /// Homogeneous: any registered scheduler, through the
    /// zero-alloc `schedule_into` path.
    Homogeneous(Box<dyn Scheduler>),
    /// Heterogeneous speeds: HEFT over unequal processors.
    Hetero(HeftHetero),
}

/// The `casch serve` server. [`Server::bind`] then [`Server::run`];
/// `run` blocks until SIGINT or an `op:"shutdown"` request, drains,
/// and returns the lifetime totals.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:4800`; port 0 picks a free
    /// port — read it back with [`Server::local_addr`]).
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that requests a graceful shutdown when set (what the
    /// protocol's `op:"shutdown"` flips; tests use it directly).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until shutdown, then drain and report. See the
    /// [module docs](self) for the architecture.
    pub fn run(self) -> io::Result<ServeSummary> {
        let Server {
            listener,
            config,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let pool = Arc::new(WorkerPool::new(threads, config.queue_depth));
        let stats = Arc::new(ServeStats::new(pool.threads()));
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();

        while !shutdown.load(Ordering::SeqCst) && !SIGINT_SEEN.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let ctx = ConnCtx {
                        pool: Arc::clone(&pool),
                        stats: Arc::clone(&stats),
                        shutdown: Arc::clone(&shutdown),
                        config: config.clone(),
                    };
                    conns.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, ctx);
                    }));
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        shutdown.store(true, Ordering::SeqCst);

        // Drain: connection threads observe the flag within one read
        // timeout; queued jobs keep their connection's writer alive
        // through its Arc, so every admitted request still gets its
        // response before the pool joins.
        for h in conns {
            let _ = h.join();
        }
        pool.shutdown();
        Ok(ServeSummary {
            connections: stats.connections.load(Ordering::Relaxed),
            accepted: stats.accepted.load(Ordering::Relaxed),
            rejected: stats.rejected.load(Ordering::Relaxed),
            timeouts: stats.timeouts.load(Ordering::Relaxed),
            malformed: stats.malformed.load(Ordering::Relaxed),
            completed: stats.completed.load(Ordering::Relaxed),
        })
    }
}

struct ConnCtx {
    pool: Arc<WorkerPool>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
}

/// The write half of one connection: serializes whole response lines
/// (shared between the reader thread — errors, stats — and workers —
/// schedules), and turns a client that vanished or stopped reading
/// into a dead connection instead of a blocked worker.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> io::Result<ConnWriter> {
        // Bound every response write: if the client stops draining the
        // socket, `write_all` errors out after WRITE_TIMEOUT instead
        // of parking a pool worker forever on a full send buffer.
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        })
    }

    /// Write one whole response line. A vanished client is not a
    /// server error: on any write failure (including a timeout) the
    /// response is dropped, the connection is marked dead so later
    /// writes become no-ops, and the socket is shut down so the
    /// reader side unblocks and reaps the connection.
    fn write_line(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.stream.lock().expect("writer lock");
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        if w.write_all(line.as_bytes())
            .and_then(|_| w.write_all(b"\n"))
            .is_err()
        {
            self.dead.store(true, Ordering::Relaxed);
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Whether a write has failed (client gone or unresponsive).
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

fn handle_connection(stream: TcpStream, ctx: ConnCtx) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let writer = Arc::new(ConnWriter::new(stream.try_clone()?)?);
    let mut reader = LineReader::new(BufReader::new(stream), ctx.config.max_line_bytes);
    let mut line_no: u64 = 0;

    loop {
        let line = match reader.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let text = match line {
            Line::TooLong(bytes) => {
                line_no += 1;
                ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: line_no,
                    error: format!(
                        "line exceeds {} bytes (got {bytes})",
                        ctx.config.max_line_bytes
                    ),
                };
                writer.write_line(&resp.to_line());
                continue;
            }
            Line::Text(text) => text,
        };
        if text.trim().is_empty() {
            continue;
        }
        line_no += 1;
        match Request::parse(&text, line_no) {
            Err(error) => {
                ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                writer.write_line(&Response::Error { id: line_no, error }.to_line());
            }
            Ok(Request::Stats { id }) => {
                let snap = ctx.stats.snapshot(id, ctx.config.queue_depth);
                writer.write_line(&Response::Stats(snap).to_line());
            }
            Ok(Request::Shutdown { id }) => {
                ctx.shutdown.store(true, Ordering::SeqCst);
                // Drain before acknowledging: the ack promises that
                // every previously admitted request has its response.
                while ctx.stats.in_flight.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let resp = Response::Shutdown {
                    id,
                    completed: ctx.stats.completed.load(Ordering::Relaxed),
                };
                writer.write_line(&resp.to_line());
                break;
            }
            Ok(Request::Schedule(req)) => {
                let id = req.id;
                match prepare(req, &ctx.config) {
                    Err(error) => {
                        ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                        writer.write_line(&Response::Error { id, error }.to_line());
                    }
                    Ok(prepared) => {
                        // Count as in-flight *before* submitting so the
                        // shutdown drain can never miss it.
                        ctx.stats.in_flight.fetch_add(1, Ordering::SeqCst);
                        let stats = Arc::clone(&ctx.stats);
                        let job_writer = Arc::clone(&writer);
                        let job: fastsched_algorithms::pool::Job = Box::new(move |worker, ws| {
                            process(prepared, worker, ws, &stats, &job_writer);
                        });
                        match ctx.pool.try_submit(job) {
                            Ok(()) => {
                                ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_rejected_job) => {
                                ctx.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
                                ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
                                let resp = Response::Error {
                                    id,
                                    error: "overloaded".to_string(),
                                };
                                writer.write_line(&resp.to_line());
                            }
                        }
                    }
                }
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) || writer.is_dead() {
            break;
        }
    }
    Ok(())
}

/// Validate a schedule request into a ready-to-run job payload.
fn prepare(req: ScheduleRequest, config: &ServeConfig) -> Result<PreparedRequest, String> {
    let dag = req.dag.build().map_err(|e| format!("parse: dag: {e}"))?;
    // Schedulers allocate O(procs) scratch, so a client-controlled
    // processor count must be bounded before it reaches a worker: up
    // to the DAG's own node count always (more can never be used), or
    // the configured cap, whichever is larger.
    let proc_limit = (dag.node_count() as u64).max(u64::from(config.max_procs.max(1)));
    let (engine, procs) = match req.speeds {
        Some(speeds) => {
            if req.algo != "heft" {
                return Err(format!(
                    "parse: `speeds` requires algo `heft` (heterogeneous HEFT), got `{}`",
                    req.algo
                ));
            }
            if speeds.len() as u64 > proc_limit {
                return Err(format!(
                    "parse: `speeds` length ({}) exceeds the server's processor limit \
                     ({proc_limit}); raise --max-procs if intended",
                    speeds.len()
                ));
            }
            let n = speeds.len() as u32;
            if let Some(p) = req.procs {
                if p != n {
                    return Err(format!(
                        "parse: `procs` ({p}) disagrees with `speeds` length ({n})"
                    ));
                }
            }
            (
                Engine::Hetero(HeftHetero::new(ProcessorSpeeds::new(speeds))),
                n,
            )
        }
        None => {
            let scheduler = scheduler_by_name(&req.algo).map_err(|e| format!("parse: {e}"))?;
            if let Some(p) = req.procs {
                if u64::from(p) > proc_limit {
                    return Err(format!(
                        "parse: `procs` ({p}) exceeds the server's processor limit \
                         ({proc_limit}); raise --max-procs if intended"
                    ));
                }
            }
            let procs = req.procs.unwrap_or_else(|| dag.node_count().max(1) as u32);
            (Engine::Homogeneous(scheduler), procs)
        }
    };
    let timeout_ms = req.timeout_ms.unwrap_or(config.default_timeout_ms);
    Ok(PreparedRequest {
        id: req.id,
        dag,
        procs,
        engine,
        deadline: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        enqueued: Instant::now(),
    })
}

/// Settles one admitted request however its job exits: decrements
/// `in_flight` exactly once (so the shutdown drain can never hang on
/// a lost request), and — if the job unwound before writing its
/// response (a scheduler panicking on hostile input; the pool catches
/// the panic and keeps the worker) — still answers the client with a
/// stable `internal:` error line.
struct ResponseGuard<'a> {
    stats: &'a ServeStats,
    writer: &'a ConnWriter,
    id: u64,
    answered: bool,
}

impl Drop for ResponseGuard<'_> {
    fn drop(&mut self) {
        if !self.answered {
            let resp = Response::Error {
                id: self.id,
                error: "internal: scheduler panicked".to_string(),
            };
            self.writer.write_line(&resp.to_line());
        }
        self.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Worker-side execution of one admitted request.
fn process(
    req: PreparedRequest,
    worker: usize,
    ws: &mut fastsched_algorithms::Workspace,
    stats: &ServeStats,
    writer: &ConnWriter,
) {
    let mut guard = ResponseGuard {
        stats,
        writer,
        id: req.id,
        answered: false,
    };
    let waited = req.enqueued.elapsed();
    let queue_us = waited.as_micros().min(u64::MAX as u128) as u64;
    if req.deadline.is_some_and(|d| waited > d) {
        stats.timeouts.fetch_add(1, Ordering::Relaxed);
        let resp = Response::Error {
            id: req.id,
            error: "timeout".to_string(),
        };
        writer.write_line(&resp.to_line());
        guard.answered = true;
        return;
    }
    let t0 = Instant::now();
    let (name, schedule) = match &req.engine {
        Engine::Homogeneous(s) => (s.name(), s.schedule_into(&req.dag, req.procs, ws)),
        Engine::Hetero(h) => ("HEFT-hetero", h.schedule(&req.dag)),
    };
    let service_us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let resp =
        ScheduleResponse::from_schedule(req.id, name, req.procs, &schedule, queue_us, service_us);
    writer.write_line(&Response::Schedule(resp).to_line());
    guard.answered = true;
    // Recycle the result so the worker's steady state stays
    // allocation-free once its spare pool is warm.
    if let Engine::Homogeneous(_) = req.engine {
        ws.recycle(schedule);
    }
    let counters = &stats.workers[worker];
    counters.requests.fetch_add(1, Ordering::Relaxed);
    counters
        .latencies
        .lock()
        .expect("latency lock")
        .record(service_us);
    stats.completed.fetch_add(1, Ordering::Relaxed);
}
