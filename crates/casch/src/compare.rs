//! Multi-algorithm comparison in the paper's table format: execution
//! times normalized to FAST, processors used, and scheduling times.

use crate::application::Application;
use crate::pipeline::{run_on_dag, PipelineReport};
use fastsched_algorithms::Scheduler;
use fastsched_sim::SimConfig;
use fastsched_workloads::TimingDatabase;
use std::fmt::Write as _;
use std::time::Duration;

/// One algorithm's row in a comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Simulated execution time (µs).
    pub execution_time: u64,
    /// Execution time normalized to the first (reference) algorithm.
    pub normalized: f64,
    /// Static schedule length.
    pub makespan: u64,
    /// Processors used.
    pub processors: u32,
    /// Algorithm wall-clock running time.
    pub scheduling_time: Duration,
}

/// A full comparison of several algorithms on one workload.
#[derive(Debug, Clone)]
pub struct ComparisonTable {
    /// Workload label.
    pub workload: String,
    /// Node / edge counts.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Rows, in the order the schedulers were supplied; the first row
    /// is the normalization reference (FAST, in the paper's tables).
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Render the table in the paper's style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "workload {} (v = {}, e = {})",
            self.workload, self.nodes, self.edges
        )
        .unwrap();
        writeln!(
            out,
            "{:<8} {:>12} {:>10} {:>12} {:>8} {:>14}",
            "algo", "exec(us)", "norm", "makespan", "procs", "sched time"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                out,
                "{:<8} {:>12} {:>10.2} {:>12} {:>8} {:>14?}",
                r.algorithm,
                r.execution_time,
                r.normalized,
                r.makespan,
                r.processors,
                r.scheduling_time
            )
            .unwrap();
        }
        out
    }
}

/// Run every scheduler on the same generated DAG and tabulate, with
/// execution times normalized to the first scheduler's.
pub fn compare_algorithms(
    app: Application,
    db: &TimingDatabase,
    schedulers: &[Box<dyn Scheduler>],
    num_procs: u32,
    sim: &SimConfig,
) -> ComparisonTable {
    let dag = app.generate(db);
    let reports: Vec<PipelineReport> = schedulers
        .iter()
        .map(|s| run_on_dag(&dag, s.as_ref(), num_procs, sim))
        .collect();
    let reference = reports
        .first()
        .map(|r| r.execution_time().max(1))
        .unwrap_or(1);
    let rows = reports
        .into_iter()
        .map(|r| ComparisonRow {
            algorithm: r.algorithm,
            execution_time: r.execution_time(),
            normalized: r.execution_time() as f64 / reference as f64,
            makespan: r.metrics.makespan,
            processors: r.metrics.processors_used,
            scheduling_time: r.scheduling_time,
        })
        .collect();
    ComparisonTable {
        workload: app.to_string(),
        nodes: dag.node_count(),
        edges: dag.edge_count(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsched_algorithms::paper_schedulers;

    #[test]
    fn compares_all_paper_algorithms() {
        let db = TimingDatabase::paragon();
        let table = compare_algorithms(
            Application::Gaussian { n: 4 },
            &db,
            &paper_schedulers(1),
            20,
            &SimConfig::default(),
        );
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.rows[0].algorithm, "FAST");
        assert!((table.rows[0].normalized - 1.0).abs() < 1e-12);
        for r in &table.rows {
            assert!(r.execution_time > 0);
            assert!(r.processors >= 1);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let db = TimingDatabase::paragon();
        let table = compare_algorithms(
            Application::Fft { points: 16 },
            &db,
            &paper_schedulers(1),
            16,
            &SimConfig::default(),
        );
        let text = table.render();
        for algo in ["FAST", "DSC", "MD", "ETF", "DLS"] {
            assert!(text.contains(algo), "missing {algo} in:\n{text}");
        }
    }
}
