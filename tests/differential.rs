//! Differential fuzz harness: cross-checks four independent
//! implementations of "what does this schedule cost?" against each
//! other on a seeded random-DAG corpus, and proves the validator's
//! teeth by mutation testing.
//!
//! The four implementations, none of which shares evaluation code with
//! the others:
//!
//! 1. the full fixed-order evaluator (`evaluate_fixed_order`) — the
//!    reference semantics;
//! 2. the incremental `DeltaEvaluator` — must be bit-identical through
//!    arbitrary probe/commit/revert walks;
//! 3. the event-driven simulator — on an ideal network it must
//!    reproduce the abstract schedule length exactly, and on a real
//!    mesh it may only add time;
//! 4. the exhaustive branch-and-bound oracle — no heuristic may beat
//!    it on instances small enough to solve exactly.
//!
//! Fixed seeds keep the whole file deterministic: a CI failure replays
//! locally byte-for-byte.

use fastsched::algorithms::hetero::{HeftHetero, ProcessorSpeeds};
use fastsched::algorithms::optimal::BranchAndBound;
use fastsched::prelude::*;
use fastsched::schedule::corrupt::{corrupt_with, Corruption};
use fastsched::schedule::evaluate::evaluate_fixed_order;
use fastsched::schedule::{
    validate_with, CostModel, DeltaEvaluator, HomogeneousModel, ScheduleError,
};
use fastsched::workloads::fuzz::{adversarial_weights, fuzz_corpus, mutate_weights, tiny_corpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CORPUS_SEED: u64 = 0xD1FF;

#[test]
fn delta_evaluator_is_bit_identical_to_full_evaluator_under_random_walks() {
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED);
    for case in fuzz_corpus(CORPUS_SEED, 8) {
        let dag = &case.dag;
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let assignment: Vec<ProcId> = dag
            .nodes()
            .map(|_| ProcId(rng.gen_range(0..case.procs)))
            .collect();
        let mut eval = DeltaEvaluator::new(dag, order.clone(), assignment, case.procs);

        for _ in 0..40 {
            let node = NodeId(rng.gen_range(0..dag.node_count() as u32));
            let target = ProcId(rng.gen_range(0..case.procs));
            if target == eval.assignment()[node.index()] {
                continue;
            }
            let probed = eval.probe_transfer(dag, node, target);
            if rng.gen_range(0..2u32) == 0 {
                eval.commit();
            } else {
                eval.revert();
            }
            // After every resolution the committed state must agree
            // with a from-scratch evaluation of the same assignment.
            let full = evaluate_fixed_order(dag, &order, eval.assignment(), case.procs);
            assert_eq!(
                eval.makespan(),
                full.makespan(),
                "{}: delta diverged from full evaluator (probe said {probed})",
                case.name
            );
            assert_eq!(
                eval.to_schedule(),
                full,
                "{}: delta schedule differs task-by-task",
                case.name
            );
        }
    }
}

#[test]
fn abstract_schedule_length_matches_ideal_simulation_and_lower_bounds_the_mesh() {
    for case in fuzz_corpus(CORPUS_SEED ^ 1, 8) {
        for s in paper_schedulers(11) {
            let schedule = s.schedule(&case.dag, case.procs);
            assert_eq!(validate(&case.dag, &schedule), Ok(()), "{}", case.name);
            let ideal = simulate(&case.dag, &schedule, &SimConfig::ideal());
            assert_eq!(
                ideal.execution_time,
                schedule.makespan(),
                "{}: {} ideal simulation diverged from the abstract model",
                case.name,
                s.name()
            );
            let mesh = simulate(&case.dag, &schedule, &SimConfig::default());
            assert!(
                mesh.execution_time >= schedule.makespan(),
                "{}: {} mesh simulation finished before the abstract model",
                case.name,
                s.name()
            );
        }
    }
}

#[test]
fn no_heuristic_beats_the_exhaustive_oracle_on_tiny_dags() {
    let oracle = BranchAndBound::new();
    let mut proven = 0usize;
    for case in tiny_corpus(CORPUS_SEED ^ 2, 9, 12) {
        let outcome = oracle.solve(&case.dag, case.procs);
        if !outcome.complete {
            // The state cap truncated the enumeration (weak
            // computation-only bound on a communication-heavy graph):
            // the incumbent proves nothing, and a heuristic beating it
            // is expected, not a bug. FAST did exactly that once.
            continue;
        }
        proven += 1;
        let optimum = outcome.schedule.makespan();
        for s in all_schedulers(3) {
            if s.is_unbounded() {
                // Clustering algorithms treat `procs` as a pool bound,
                // not a constraint — they may legally use more
                // processors than the oracle was given.
                continue;
            }
            let m = s.schedule(&case.dag, case.procs).makespan();
            assert!(
                m >= optimum,
                "{}: {} produced {m} below the optimum {optimum} — \
                 either it returned an illegal schedule or the oracle is wrong",
                case.name,
                s.name()
            );
        }
    }
    // The check must not be vacuous. Measured on this seeded corpus:
    // 4 of 9 cases (trees and small fork-joins) enumerate fully within
    // the default cap; the dense 12-node layered shapes exceed 40M
    // states and are the expected skips.
    assert!(proven >= 4, "only {proven}/9 oracle searches completed");
}

#[test]
fn weight_mutated_corpus_keeps_every_scheduler_legal() {
    for case in fuzz_corpus(CORPUS_SEED ^ 3, 6) {
        for seed in 0..3u64 {
            let mutated = mutate_weights(&case.dag, seed);
            for s in paper_schedulers(seed) {
                let schedule = s.schedule(&mutated, case.procs);
                assert_eq!(
                    validate(&mutated, &schedule),
                    Ok(()),
                    "{} (weights jittered, seed {seed}): {} became illegal",
                    case.name,
                    s.name()
                );
            }
        }
    }
}

/// The validator-strength proof: inject k corruptions, demand k
/// rejections, each with the exact error kind the operator targets.
#[test]
fn every_schedule_corruption_is_rejected_with_its_expected_kind() {
    let model = HomogeneousModel;
    let mut rejected = 0usize;
    for case in fuzz_corpus(CORPUS_SEED ^ 4, 6) {
        let schedule = Fast::new().schedule(&case.dag, case.procs);
        assert_eq!(validate_with(&model, &case.dag, &schedule), Ok(()));
        for kind in Corruption::ALL {
            for seed in 0..2u64 {
                let Some(bad) = corrupt_with(&model, &case.dag, &schedule, kind, seed) else {
                    continue;
                };
                let err = validate_with(&model, &case.dag, &bad).expect_err(&format!(
                    "{}: corruption {kind:?} (seed {seed}) passed validation",
                    case.name
                ));
                assert_eq!(
                    err.kind(),
                    kind.expected_kind(),
                    "{}: {kind:?} rejected for the wrong reason: {err}",
                    case.name
                );
                rejected += 1;
            }
        }
    }
    // The acceptance bar: at least 8 distinct seeded corruptions
    // rejected; in practice this is in the hundreds.
    assert!(rejected >= 8, "only {rejected} corruptions exercised");
}

/// Same mutation proof under a heterogeneous cost model, where wrong
/// per-processor durations (the satellite bugfix) are detectable at
/// all.
#[test]
fn hetero_schedule_corruptions_are_rejected_under_the_speeds_model() {
    let speeds = ProcessorSpeeds::new(vec![100, 200, 50]);
    let mut rejected = 0usize;
    let mut nominal_duration_hits = 0usize;
    for case in fuzz_corpus(CORPUS_SEED ^ 5, 4) {
        let schedule = HeftHetero::new(speeds.clone()).schedule(&case.dag);
        assert_eq!(validate_with(&speeds, &case.dag, &schedule), Ok(()));
        for kind in Corruption::ALL {
            for seed in 0..2u64 {
                let Some(bad) = corrupt_with(&speeds, &case.dag, &schedule, kind, seed) else {
                    continue;
                };
                let err = validate_with(&speeds, &case.dag, &bad).expect_err(&format!(
                    "{}: hetero corruption {kind:?} passed validation",
                    case.name
                ));
                assert_eq!(err.kind(), kind.expected_kind(), "{}", case.name);
                rejected += 1;
                if kind == Corruption::NominalDuration {
                    nominal_duration_hits += 1;
                }
            }
        }
    }
    assert!(
        rejected >= 8,
        "only {rejected} hetero corruptions exercised"
    );
    // The hetero-specific operator (nominal weight on a non-nominal
    // processor) must actually fire — it is inapplicable under the
    // homogeneous model, so only this test covers it.
    assert!(nominal_duration_hits > 0);
}

#[test]
fn adversarial_weights_overflow_loudly_not_silently() {
    // A chain with weights near u64::MAX: a "schedule" built with
    // saturating arithmetic is structurally complete but its times
    // cannot be represented — the validator must answer TimeOverflow
    // (or a concrete violation), never wrap and accept.
    let base = fastsched::dag::examples::chain(4, 10, 3);
    let dag = adversarial_weights(&base, 7);
    let mut s = Schedule::new(dag.node_count(), 1);
    let mut clock: u64 = 0;
    for n in dag.nodes() {
        let finish = clock.saturating_add(dag.weight(n));
        s.place(n, ProcId(0), clock, finish);
        clock = finish;
    }
    match validate(&dag, &s) {
        Err(ScheduleError::TimeOverflow { .. }) => {}
        Err(ScheduleError::BadDuration { .. }) => {
            // Acceptable: the saturated finish no longer equals
            // start + weight — the point is a loud structured error.
        }
        other => panic!("adversarial schedule was not rejected loudly: {other:?}"),
    }

    // Metrics over the same graph must clamp, not wrap.
    let metrics = ScheduleMetrics::compute(&dag, &s);
    assert_eq!(metrics.sequential_time, u64::MAX);

    // And a representable adversarial case (2 huge nodes) validates
    // and meters without any wrapping artifacts.
    let mut b = fastsched::dag::DagBuilder::new();
    let a = b.add_task(u64::MAX / 2);
    let c = b.add_task(u64::MAX / 3);
    b.add_edge(a, c, 1).unwrap();
    let g = b.build().unwrap();
    let mut s = Schedule::new(2, 1);
    s.place(NodeId(0), ProcId(0), 0, u64::MAX / 2);
    s.place(
        NodeId(1),
        ProcId(0),
        u64::MAX / 2,
        u64::MAX / 2 + u64::MAX / 3,
    );
    assert_eq!(validate(&g, &s), Ok(()));
    let m = ScheduleMetrics::compute(&g, &s);
    assert!(m.speedup >= 0.99, "speedup wrapped: {}", m.speedup);
}

/// The reduction identities that make the generic model paths
/// trustworthy: alpha-beta(0, 1, 1) and a single-group hierarchy with
/// an ideal intra link price messages exactly like [`HomogeneousModel`],
/// so every scheduler's `schedule_with_model` must reproduce its plain
/// `schedule` byte-for-byte — same placements, same times, not just the
/// same makespan.
#[test]
fn identity_comm_models_are_byte_identical_to_the_homogeneous_paths() {
    use fastsched::schedule::{AlphaBeta, CommModel, Hierarchical, IDEAL_LINK};
    for case in fuzz_corpus(CORPUS_SEED ^ 6, 8) {
        let identities = [
            (
                "alpha-beta(0,1,1)",
                CommModel::AlphaBeta(AlphaBeta::new(0, 1, 1)),
            ),
            (
                "single-group hier",
                CommModel::Hierarchical(
                    Hierarchical::from_group_sizes(
                        &[case.procs],
                        IDEAL_LINK,
                        AlphaBeta::new(40, 2, 1),
                    )
                    .expect("group table"),
                ),
            ),
        ];
        for (tag, model) in &identities {
            let pairs = [
                (
                    "FAST",
                    Fast::new().schedule(&case.dag, case.procs),
                    Fast::new().schedule_with_model(&case.dag, case.procs, model),
                ),
                (
                    "ETF",
                    Etf::new().schedule(&case.dag, case.procs),
                    Etf::new().schedule_with_model(&case.dag, case.procs, model),
                ),
                (
                    "DLS",
                    Dls::new().schedule(&case.dag, case.procs),
                    Dls::new().schedule_with_model(&case.dag, case.procs, model),
                ),
                (
                    "HEFT",
                    Heft::new().schedule(&case.dag, case.procs),
                    Heft::new().schedule_with_model(&case.dag, case.procs, model),
                ),
            ];
            for (name, plain, modeled) in &pairs {
                assert_eq!(
                    plain, modeled,
                    "{}: {name} under {tag} diverged from the homogeneous path",
                    case.name
                );
            }
        }
    }
}

/// Model-priced schedules must stay legal under the model that priced
/// them, and the `DeltaEvaluator` seeded with the same model must agree
/// bit-for-bit with the from-scratch model evaluator through random
/// probe/commit/revert walks.
#[test]
fn delta_evaluator_agrees_with_full_evaluation_under_comm_models() {
    use fastsched::schedule::evaluate::evaluate_fixed_order_with;
    use fastsched::schedule::{AlphaBeta, CommModel, Hierarchical, IDEAL_LINK};
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED ^ 7);
    for case in fuzz_corpus(CORPUS_SEED ^ 7, 6) {
        let models = [
            CommModel::AlphaBeta(AlphaBeta::new(15, 3, 2)),
            CommModel::Hierarchical(
                Hierarchical::from_group_sizes(
                    &[case.procs / 2 + case.procs % 2, case.procs / 2],
                    IDEAL_LINK,
                    AlphaBeta::new(25, 2, 1),
                )
                .expect("group table"),
            ),
        ];
        for model in models {
            let schedule = Fast::new().schedule_with_model(&case.dag, case.procs, &model);
            assert_eq!(
                validate_with(&model, &case.dag, &schedule),
                Ok(()),
                "{}: FAST under {model:?} produced an illegal schedule",
                case.name
            );

            let order: Vec<NodeId> = case.dag.topo_order().to_vec();
            let assignment: Vec<ProcId> = case
                .dag
                .nodes()
                .map(|_| ProcId(rng.gen_range(0..case.procs)))
                .collect();
            let mut eval = DeltaEvaluator::with_model(
                model.clone(),
                &case.dag,
                order.clone(),
                assignment,
                case.procs,
            );
            for _ in 0..25 {
                let node = NodeId(rng.gen_range(0..case.dag.node_count() as u32));
                let target = ProcId(rng.gen_range(0..case.procs));
                if target == eval.assignment()[node.index()] {
                    continue;
                }
                eval.probe_transfer(&case.dag, node, target);
                if rng.gen_range(0..2u32) == 0 {
                    eval.commit();
                } else {
                    eval.revert();
                }
                let full = evaluate_fixed_order_with(
                    &model,
                    &case.dag,
                    &order,
                    eval.assignment(),
                    case.procs,
                );
                assert_eq!(
                    eval.makespan(),
                    full.makespan(),
                    "{}: delta diverged from full evaluation under {model:?}",
                    case.name
                );
            }
        }
    }
}

/// The corruption operators must keep their teeth when the validator
/// prices messages through the new models: every applicable corruption
/// of a model-priced FAST schedule is rejected with its expected kind.
#[test]
fn comm_model_schedule_corruptions_are_rejected_with_their_expected_kinds() {
    use fastsched::schedule::{AlphaBeta, CommModel, Hierarchical, IDEAL_LINK};
    for (tag, model) in [
        (
            "alpha-beta(30,3,2)",
            CommModel::AlphaBeta(AlphaBeta::new(30, 3, 2)),
        ),
        (
            "two-group hier",
            CommModel::Hierarchical(
                Hierarchical::from_group_sizes(&[2, 2], IDEAL_LINK, AlphaBeta::new(50, 2, 1))
                    .expect("group table"),
            ),
        ),
    ] {
        let mut rejected = 0usize;
        for case in fuzz_corpus(CORPUS_SEED ^ 8, 4) {
            let procs = case.procs.min(4);
            let schedule = Fast::new().schedule_with_model(&case.dag, procs, &model);
            assert_eq!(
                validate_with(&model, &case.dag, &schedule),
                Ok(()),
                "{} under {tag}",
                case.name
            );
            for kind in Corruption::ALL {
                for seed in 0..2u64 {
                    let Some(bad) = corrupt_with(&model, &case.dag, &schedule, kind, seed) else {
                        continue;
                    };
                    let err = validate_with(&model, &case.dag, &bad).expect_err(&format!(
                        "{}: corruption {kind:?} under {tag} passed validation",
                        case.name
                    ));
                    assert_eq!(
                        err.kind(),
                        kind.expected_kind(),
                        "{}: {kind:?} under {tag} rejected for the wrong reason: {err}",
                        case.name
                    );
                    rejected += 1;
                }
            }
        }
        assert!(
            rejected >= 8,
            "only {rejected} corruptions exercised under {tag}"
        );
    }
}

/// Hand-computed schedules under the new models, checked number by
/// number. A two-node chain (weights 10 and 5, edge cost 8):
///
/// * alpha-beta(4, 3, 2): cross-processor message = 4 + ceil(8*3/2)
///   = 16, so placing the child on another processor starts it at
///   10 + 16 = 26; co-located it starts at 10.
/// * two groups of two, ideal intra, inter = (100, 1, 1): the child
///   pays the nominal 8 within the group (an ideal link adds no
///   overhead but is not free), 100 + 8 across groups, and 0 only
///   when co-located.
#[test]
fn hand_computed_message_prices_drive_the_model_evaluator() {
    use fastsched::schedule::evaluate::evaluate_fixed_order_with;
    use fastsched::schedule::{AlphaBeta, Hierarchical, IDEAL_LINK};
    let mut b = fastsched::dag::DagBuilder::new();
    let parent = b.add_task(10);
    let child = b.add_task(5);
    b.add_edge(parent, child, 8).unwrap();
    let dag = b.build().unwrap();
    let order = vec![parent, child];

    let ab = AlphaBeta::new(4, 3, 2);
    assert_eq!(ab.price(8), 4 + 12);
    let split = evaluate_fixed_order_with(&ab, &dag, &order, &[ProcId(0), ProcId(1)], 2);
    assert_eq!(split.start_of(child), Some(26));
    assert_eq!(split.makespan(), 31);
    let together = evaluate_fixed_order_with(&ab, &dag, &order, &[ProcId(0), ProcId(0)], 2);
    assert_eq!(together.start_of(child), Some(10));
    assert_eq!(together.makespan(), 15);

    let hier = Hierarchical::from_group_sizes(&[2, 2], IDEAL_LINK, AlphaBeta::new(100, 1, 1))
        .expect("group table");
    let intra = evaluate_fixed_order_with(&hier, &dag, &order, &[ProcId(0), ProcId(1)], 4);
    assert_eq!(
        intra.start_of(child),
        Some(18),
        "ideal intra link prices the nominal edge cost"
    );
    let colocated = evaluate_fixed_order_with(&hier, &dag, &order, &[ProcId(0), ProcId(0)], 4);
    assert_eq!(colocated.start_of(child), Some(10), "co-location is free");
    let inter = evaluate_fixed_order_with(&hier, &dag, &order, &[ProcId(0), ProcId(2)], 4);
    assert_eq!(inter.start_of(child), Some(10 + 100 + 8));
    assert_eq!(inter.makespan(), 123);
}

/// Regression: `Schedule::compact` reorders processor lanes by first
/// start time, which silently moves tasks across hierarchical group
/// boundaries and reprices every message — the model A/B bench caught
/// FAST emitting a precedence-violating "schedule" this way. Under a
/// multi-group model no generic path may compact; every algorithm's
/// output must validate under the model that priced it at full width.
#[test]
fn multi_group_hierarchical_schedules_are_never_lane_compacted() {
    use fastsched::schedule::{AlphaBeta, CommModel, CostModel, Hierarchical, IDEAL_LINK};
    let model = CommModel::Hierarchical(
        Hierarchical::from_group_sizes(&[4, 4], IDEAL_LINK, AlphaBeta::new(50, 2, 1))
            .expect("group table"),
    );
    assert!(!model.permits_renumbering());
    for case in fuzz_corpus(CORPUS_SEED ^ 9, 8) {
        let schedules = [
            (
                "FAST",
                Fast::new().schedule_with_model(&case.dag, 8, &model),
            ),
            ("ETF", Etf::new().schedule_with_model(&case.dag, 8, &model)),
            ("DLS", Dls::new().schedule_with_model(&case.dag, 8, &model)),
            (
                "HEFT",
                Heft::new().schedule_with_model(&case.dag, 8, &model),
            ),
        ];
        for (name, s) in &schedules {
            assert_eq!(
                s.num_procs(),
                8,
                "{}: {name} compacted a group-sensitive schedule",
                case.name
            );
            assert_eq!(
                validate_with(&model, &case.dag, s),
                Ok(()),
                "{}: {name} illegal under the hierarchical model",
                case.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Memory-constrained scheduling (DESIGN.md §17): unbounded capacities
// are byte-identical to the capacity-blind paths, finite capacities
// are enforced end to end, and the validator's capacity pass has
// mutation-tested teeth under both machine models.
// ---------------------------------------------------------------------------

#[test]
fn unbounded_capacities_are_byte_identical_to_the_capacity_blind_paths() {
    use fastsched::schedule::MemoryCapacities;
    use fastsched::workloads::fuzz::assign_mems;
    for case in fuzz_corpus(CORPUS_SEED ^ 10, 8) {
        // Footprints are populated, but no lane has a budget: the
        // memory machinery must be a spectator.
        let dag = assign_mems(&case.dag, CORPUS_SEED ^ 10);
        let unbounded = MemoryCapacities::unbounded(HomogeneousModel);
        assert!(!unbounded.has_capacities());
        let pairs = [
            (
                "FAST",
                Fast::new().schedule(&dag, case.procs),
                Fast::new().schedule_with_model(&dag, case.procs, &unbounded),
            ),
            (
                "HEFT",
                Heft::new().schedule(&dag, case.procs),
                Heft::new().schedule_with_model(&dag, case.procs, &unbounded),
            ),
        ];
        for (name, plain, modeled) in &pairs {
            assert_eq!(
                plain, modeled,
                "{}: {name} under unbounded capacities diverged from schedule()",
                case.name
            );
        }
    }
}

#[test]
fn capped_schedules_respect_every_lane_budget_and_are_never_compacted() {
    use fastsched::schedule::MemoryCapacities;
    use fastsched::workloads::fuzz::mem_corpus;
    for case in mem_corpus(CORPUS_SEED ^ 11, 10) {
        for cap in [case.tight_cap, case.loose_cap] {
            let model = MemoryCapacities::uniform(HomogeneousModel, cap, case.procs);
            assert!(!model.permits_renumbering());
            let schedules = [
                (
                    "FAST",
                    Fast::new().schedule_with_model(&case.dag, case.procs, &model),
                ),
                (
                    "HEFT",
                    Heft::new().schedule_with_model(&case.dag, case.procs, &model),
                ),
            ];
            for (name, s) in &schedules {
                assert_eq!(
                    s.num_procs(),
                    case.procs,
                    "{}: {name} compacted a capacity-constrained schedule",
                    case.name
                );
                assert_eq!(
                    validate_with(&model, &case.dag, s),
                    Ok(()),
                    "{}: {name} broke a {cap}-byte lane budget",
                    case.name
                );
            }
        }
    }
}

/// Hand-computed rejection case: a 4-task chain of 6-byte tasks on
/// two 12-byte processors. The capacity-blind schedule co-locates the
/// whole chain (24 resident bytes on PE0 — invalid), while the
/// memory-aware path must split it two-and-two and stay legal.
#[test]
fn a_capacity_blind_chain_is_rejected_where_the_memory_aware_split_fits() {
    use fastsched::dag::DagBuilder;
    use fastsched::schedule::MemoryCapacities;
    let mut b = DagBuilder::new();
    let mut prev = b.add_task_with_mem(10, 6);
    for _ in 0..3 {
        let n = b.add_task_with_mem(10, 6);
        b.add_edge(prev, n, 2).expect("edge");
        prev = n;
    }
    let dag = b.build().expect("dag");
    let model = MemoryCapacities::uniform(HomogeneousModel, 12, 2);

    // A chain offers no parallelism, so the blind path packs one lane.
    let blind = Fast::new().schedule(&dag, 2);
    let err =
        validate_with(&model, &dag, &blind).expect_err("24 resident bytes passed a 12-byte budget");
    assert_eq!(
        err,
        ScheduleError::CapacityExceeded {
            proc: 0,
            capacity: 12,
            used: 24,
        }
    );

    let aware = Fast::new().schedule_with_model(&dag, 2, &model);
    assert_eq!(validate_with(&model, &dag, &aware), Ok(()));
    // Two tasks per lane is the only legal split; the second lane's
    // first task pays the crossing edge (weight-2 message).
    assert_eq!(aware.num_procs(), 2);
    let heft = Heft::new().schedule_with_model(&dag, 2, &model);
    assert_eq!(validate_with(&model, &dag, &heft), Ok(()));
}

/// The validator-strength proof for the capacity pass: seeded
/// over-capacity corruptions must be rejected with exactly
/// `CapacityExceeded`, under the homogeneous *and* the heterogeneous
/// machine models.
#[test]
fn over_capacity_corruptions_are_rejected_under_homo_and_hetero_models() {
    use fastsched::schedule::{MemoryCapacities, ScheduleErrorKind};
    use fastsched::workloads::fuzz::mem_corpus;
    let mut homo_hits = 0usize;
    let mut hetero_hits = 0usize;
    for case in mem_corpus(CORPUS_SEED ^ 12, 6) {
        let homo = MemoryCapacities::uniform(HomogeneousModel, case.tight_cap, case.procs);
        let speeds: Vec<u32> = (0..case.procs)
            .map(|p| [100, 200, 50, 150][p as usize % 4])
            .collect();
        let hetero =
            MemoryCapacities::uniform(ProcessorSpeeds::new(speeds), case.tight_cap, case.procs);
        let s_homo = Fast::new().schedule_with_model(&case.dag, case.procs, &homo);
        let s_hetero = Heft::new().schedule_with_model(&case.dag, case.procs, &hetero);
        assert_eq!(validate_with(&homo, &case.dag, &s_homo), Ok(()));
        assert_eq!(validate_with(&hetero, &case.dag, &s_hetero), Ok(()));
        for seed in 0..3u64 {
            if let Some(bad) =
                corrupt_with(&homo, &case.dag, &s_homo, Corruption::OverCapacity, seed)
            {
                let err = validate_with(&homo, &case.dag, &bad).expect_err(&format!(
                    "{}: over-capacity mutant passed the homogeneous validator",
                    case.name
                ));
                assert_eq!(
                    err.kind(),
                    ScheduleErrorKind::CapacityExceeded,
                    "{}",
                    case.name
                );
                homo_hits += 1;
            }
            if let Some(bad) = corrupt_with(
                &hetero,
                &case.dag,
                &s_hetero,
                Corruption::OverCapacity,
                seed,
            ) {
                let err = validate_with(&hetero, &case.dag, &bad).expect_err(&format!(
                    "{}: over-capacity mutant passed the heterogeneous validator",
                    case.name
                ));
                assert_eq!(
                    err.kind(),
                    ScheduleErrorKind::CapacityExceeded,
                    "{}",
                    case.name
                );
                hetero_hits += 1;
            }
        }
    }
    // The proof must not be vacuous on either model.
    assert!(
        homo_hits >= 4,
        "only {homo_hits} homogeneous capacity mutants fired"
    );
    assert!(
        hetero_hits >= 4,
        "only {hetero_hits} heterogeneous capacity mutants fired"
    );
}

/// Capacity-aware optimality floor: on instances small enough to
/// enumerate, no memory-aware heuristic may beat the capacity-aware
/// exhaustive oracle, and the oracle's own answer must respect the
/// budgets it was given.
#[test]
fn no_memory_aware_heuristic_beats_the_capacity_aware_oracle() {
    use fastsched::schedule::MemoryCapacities;
    use fastsched::workloads::fuzz::{assign_mems, tiny_corpus};
    let oracle = BranchAndBound::new();
    let mut proven = 0usize;
    for case in tiny_corpus(CORPUS_SEED ^ 13, 8, 9) {
        let dag = assign_mems(&case.dag, CORPUS_SEED ^ 13);
        let total: u64 = dag.mems().iter().sum();
        let max_mem = dag.mems().iter().copied().max().unwrap_or(0);
        // The same feasible-by-construction budget the fuzz corpus
        // uses: twice the balanced share, floored by the largest task.
        let cap = 2 * (total.div_ceil(u64::from(case.procs))).max(max_mem);
        let caps: Vec<Option<u64>> = vec![Some(cap); case.procs as usize];
        let outcome = oracle.solve_with_caps(&dag, case.procs, &caps);
        if !outcome.complete {
            continue;
        }
        proven += 1;
        let model = MemoryCapacities::uniform(HomogeneousModel, cap, case.procs);
        assert_eq!(
            validate_with(&model, &dag, &outcome.schedule),
            Ok(()),
            "{}: the oracle broke its own budgets",
            case.name
        );
        let optimum = outcome.schedule.makespan();
        for (name, m) in [
            (
                "FAST",
                Fast::new()
                    .schedule_with_model(&dag, case.procs, &model)
                    .makespan(),
            ),
            (
                "HEFT",
                Heft::new()
                    .schedule_with_model(&dag, case.procs, &model)
                    .makespan(),
            ),
        ] {
            assert!(
                m >= optimum,
                "{}: memory-aware {name} produced {m} below the capped optimum {optimum}",
                case.name
            );
        }
    }
    assert!(
        proven >= 4,
        "only {proven}/8 capped oracle searches completed"
    );
}

/// `Fast::schedule_with_model_into` (the workspace-scratch model
/// path) must be byte-identical to the allocating model path, capped
/// and uncapped, across workspace reuse.
#[test]
fn workspace_model_path_is_byte_identical_capped_and_uncapped() {
    use fastsched::algorithms::Workspace;
    use fastsched::schedule::MemoryCapacities;
    use fastsched::workloads::fuzz::mem_corpus;
    let mut ws = Workspace::new();
    for case in mem_corpus(CORPUS_SEED ^ 14, 8) {
        for model in [
            MemoryCapacities::uniform(HomogeneousModel, case.tight_cap, case.procs),
            MemoryCapacities::unbounded(HomogeneousModel),
        ] {
            let fresh = Fast::new().schedule_with_model(&case.dag, case.procs, &model);
            let warm = Fast::new().schedule_with_model_into(&case.dag, case.procs, &model, &mut ws);
            assert_eq!(
                fresh,
                warm,
                "{}: workspace model path diverged (caps: {:?})",
                case.name,
                model.caps()
            );
        }
    }
}

/// `schedule_many_par_by` (the model-aware batch shards) must be
/// element-wise byte-identical at every thread count — the test
/// behind `casch batch --comm/--mem-caps --threads N`.
#[test]
fn model_batches_are_byte_identical_at_every_thread_count() {
    use fastsched::algorithms::schedule_many_par_by;
    use fastsched::schedule::MemoryCapacities;
    use fastsched::workloads::fuzz::mem_corpus;
    let corpus = mem_corpus(CORPUS_SEED ^ 15, 9);
    let dags: Vec<_> = corpus.iter().map(|c| c.dag.clone()).collect();
    let procs: Vec<u32> = corpus.iter().map(|c| c.procs).collect();
    let caps: Vec<u64> = corpus.iter().map(|c| c.tight_cap).collect();
    let run = |threads: usize| {
        schedule_many_par_by(&dags, &procs, threads, |dag, np| {
            // Each corpus entry carries its own budget; recover it by
            // identity since the closure only sees (dag, procs).
            let i = dags
                .iter()
                .position(|d| std::ptr::eq(d, dag))
                .expect("corpus dag");
            let model = MemoryCapacities::uniform(HomogeneousModel, caps[i], np);
            Fast::new().schedule_with_model(dag, np, &model)
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        let par = run(threads);
        assert_eq!(serial.len(), par.len());
        for (i, (s, p)) in serial.iter().zip(&par).enumerate() {
            assert_eq!(
                s.0, p.0,
                "{}: schedule diverged at {threads} thread(s)",
                corpus[i].name
            );
        }
    }
}
