//! Differential fuzz harness: cross-checks four independent
//! implementations of "what does this schedule cost?" against each
//! other on a seeded random-DAG corpus, and proves the validator's
//! teeth by mutation testing.
//!
//! The four implementations, none of which shares evaluation code with
//! the others:
//!
//! 1. the full fixed-order evaluator (`evaluate_fixed_order`) — the
//!    reference semantics;
//! 2. the incremental `DeltaEvaluator` — must be bit-identical through
//!    arbitrary probe/commit/revert walks;
//! 3. the event-driven simulator — on an ideal network it must
//!    reproduce the abstract schedule length exactly, and on a real
//!    mesh it may only add time;
//! 4. the exhaustive branch-and-bound oracle — no heuristic may beat
//!    it on instances small enough to solve exactly.
//!
//! Fixed seeds keep the whole file deterministic: a CI failure replays
//! locally byte-for-byte.

use fastsched::algorithms::hetero::{HeftHetero, ProcessorSpeeds};
use fastsched::algorithms::optimal::BranchAndBound;
use fastsched::prelude::*;
use fastsched::schedule::corrupt::{corrupt_with, Corruption};
use fastsched::schedule::evaluate::evaluate_fixed_order;
use fastsched::schedule::{validate_with, DeltaEvaluator, HomogeneousModel, ScheduleError};
use fastsched::workloads::fuzz::{adversarial_weights, fuzz_corpus, mutate_weights, tiny_corpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CORPUS_SEED: u64 = 0xD1FF;

#[test]
fn delta_evaluator_is_bit_identical_to_full_evaluator_under_random_walks() {
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED);
    for case in fuzz_corpus(CORPUS_SEED, 8) {
        let dag = &case.dag;
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let assignment: Vec<ProcId> = dag
            .nodes()
            .map(|_| ProcId(rng.gen_range(0..case.procs)))
            .collect();
        let mut eval = DeltaEvaluator::new(dag, order.clone(), assignment, case.procs);

        for _ in 0..40 {
            let node = NodeId(rng.gen_range(0..dag.node_count() as u32));
            let target = ProcId(rng.gen_range(0..case.procs));
            if target == eval.assignment()[node.index()] {
                continue;
            }
            let probed = eval.probe_transfer(dag, node, target);
            if rng.gen_range(0..2u32) == 0 {
                eval.commit();
            } else {
                eval.revert();
            }
            // After every resolution the committed state must agree
            // with a from-scratch evaluation of the same assignment.
            let full = evaluate_fixed_order(dag, &order, eval.assignment(), case.procs);
            assert_eq!(
                eval.makespan(),
                full.makespan(),
                "{}: delta diverged from full evaluator (probe said {probed})",
                case.name
            );
            assert_eq!(
                eval.to_schedule(),
                full,
                "{}: delta schedule differs task-by-task",
                case.name
            );
        }
    }
}

#[test]
fn abstract_schedule_length_matches_ideal_simulation_and_lower_bounds_the_mesh() {
    for case in fuzz_corpus(CORPUS_SEED ^ 1, 8) {
        for s in paper_schedulers(11) {
            let schedule = s.schedule(&case.dag, case.procs);
            assert_eq!(validate(&case.dag, &schedule), Ok(()), "{}", case.name);
            let ideal = simulate(&case.dag, &schedule, &SimConfig::ideal());
            assert_eq!(
                ideal.execution_time,
                schedule.makespan(),
                "{}: {} ideal simulation diverged from the abstract model",
                case.name,
                s.name()
            );
            let mesh = simulate(&case.dag, &schedule, &SimConfig::default());
            assert!(
                mesh.execution_time >= schedule.makespan(),
                "{}: {} mesh simulation finished before the abstract model",
                case.name,
                s.name()
            );
        }
    }
}

#[test]
fn no_heuristic_beats_the_exhaustive_oracle_on_tiny_dags() {
    let oracle = BranchAndBound::new();
    let mut proven = 0usize;
    for case in tiny_corpus(CORPUS_SEED ^ 2, 9, 12) {
        let outcome = oracle.solve(&case.dag, case.procs);
        if !outcome.complete {
            // The state cap truncated the enumeration (weak
            // computation-only bound on a communication-heavy graph):
            // the incumbent proves nothing, and a heuristic beating it
            // is expected, not a bug. FAST did exactly that once.
            continue;
        }
        proven += 1;
        let optimum = outcome.schedule.makespan();
        for s in all_schedulers(3) {
            if s.is_unbounded() {
                // Clustering algorithms treat `procs` as a pool bound,
                // not a constraint — they may legally use more
                // processors than the oracle was given.
                continue;
            }
            let m = s.schedule(&case.dag, case.procs).makespan();
            assert!(
                m >= optimum,
                "{}: {} produced {m} below the optimum {optimum} — \
                 either it returned an illegal schedule or the oracle is wrong",
                case.name,
                s.name()
            );
        }
    }
    // The check must not be vacuous. Measured on this seeded corpus:
    // 4 of 9 cases (trees and small fork-joins) enumerate fully within
    // the default cap; the dense 12-node layered shapes exceed 40M
    // states and are the expected skips.
    assert!(proven >= 4, "only {proven}/9 oracle searches completed");
}

#[test]
fn weight_mutated_corpus_keeps_every_scheduler_legal() {
    for case in fuzz_corpus(CORPUS_SEED ^ 3, 6) {
        for seed in 0..3u64 {
            let mutated = mutate_weights(&case.dag, seed);
            for s in paper_schedulers(seed) {
                let schedule = s.schedule(&mutated, case.procs);
                assert_eq!(
                    validate(&mutated, &schedule),
                    Ok(()),
                    "{} (weights jittered, seed {seed}): {} became illegal",
                    case.name,
                    s.name()
                );
            }
        }
    }
}

/// The validator-strength proof: inject k corruptions, demand k
/// rejections, each with the exact error kind the operator targets.
#[test]
fn every_schedule_corruption_is_rejected_with_its_expected_kind() {
    let model = HomogeneousModel;
    let mut rejected = 0usize;
    for case in fuzz_corpus(CORPUS_SEED ^ 4, 6) {
        let schedule = Fast::new().schedule(&case.dag, case.procs);
        assert_eq!(validate_with(&model, &case.dag, &schedule), Ok(()));
        for kind in Corruption::ALL {
            for seed in 0..2u64 {
                let Some(bad) = corrupt_with(&model, &case.dag, &schedule, kind, seed) else {
                    continue;
                };
                let err = validate_with(&model, &case.dag, &bad).expect_err(&format!(
                    "{}: corruption {kind:?} (seed {seed}) passed validation",
                    case.name
                ));
                assert_eq!(
                    err.kind(),
                    kind.expected_kind(),
                    "{}: {kind:?} rejected for the wrong reason: {err}",
                    case.name
                );
                rejected += 1;
            }
        }
    }
    // The acceptance bar: at least 8 distinct seeded corruptions
    // rejected; in practice this is in the hundreds.
    assert!(rejected >= 8, "only {rejected} corruptions exercised");
}

/// Same mutation proof under a heterogeneous cost model, where wrong
/// per-processor durations (the satellite bugfix) are detectable at
/// all.
#[test]
fn hetero_schedule_corruptions_are_rejected_under_the_speeds_model() {
    let speeds = ProcessorSpeeds::new(vec![100, 200, 50]);
    let mut rejected = 0usize;
    let mut nominal_duration_hits = 0usize;
    for case in fuzz_corpus(CORPUS_SEED ^ 5, 4) {
        let schedule = HeftHetero::new(speeds.clone()).schedule(&case.dag);
        assert_eq!(validate_with(&speeds, &case.dag, &schedule), Ok(()));
        for kind in Corruption::ALL {
            for seed in 0..2u64 {
                let Some(bad) = corrupt_with(&speeds, &case.dag, &schedule, kind, seed) else {
                    continue;
                };
                let err = validate_with(&speeds, &case.dag, &bad).expect_err(&format!(
                    "{}: hetero corruption {kind:?} passed validation",
                    case.name
                ));
                assert_eq!(err.kind(), kind.expected_kind(), "{}", case.name);
                rejected += 1;
                if kind == Corruption::NominalDuration {
                    nominal_duration_hits += 1;
                }
            }
        }
    }
    assert!(
        rejected >= 8,
        "only {rejected} hetero corruptions exercised"
    );
    // The hetero-specific operator (nominal weight on a non-nominal
    // processor) must actually fire — it is inapplicable under the
    // homogeneous model, so only this test covers it.
    assert!(nominal_duration_hits > 0);
}

#[test]
fn adversarial_weights_overflow_loudly_not_silently() {
    // A chain with weights near u64::MAX: a "schedule" built with
    // saturating arithmetic is structurally complete but its times
    // cannot be represented — the validator must answer TimeOverflow
    // (or a concrete violation), never wrap and accept.
    let base = fastsched::dag::examples::chain(4, 10, 3);
    let dag = adversarial_weights(&base, 7);
    let mut s = Schedule::new(dag.node_count(), 1);
    let mut clock: u64 = 0;
    for n in dag.nodes() {
        let finish = clock.saturating_add(dag.weight(n));
        s.place(n, ProcId(0), clock, finish);
        clock = finish;
    }
    match validate(&dag, &s) {
        Err(ScheduleError::TimeOverflow { .. }) => {}
        Err(ScheduleError::BadDuration { .. }) => {
            // Acceptable: the saturated finish no longer equals
            // start + weight — the point is a loud structured error.
        }
        other => panic!("adversarial schedule was not rejected loudly: {other:?}"),
    }

    // Metrics over the same graph must clamp, not wrap.
    let metrics = ScheduleMetrics::compute(&dag, &s);
    assert_eq!(metrics.sequential_time, u64::MAX);

    // And a representable adversarial case (2 huge nodes) validates
    // and meters without any wrapping artifacts.
    let mut b = fastsched::dag::DagBuilder::new();
    let a = b.add_task(u64::MAX / 2);
    let c = b.add_task(u64::MAX / 3);
    b.add_edge(a, c, 1).unwrap();
    let g = b.build().unwrap();
    let mut s = Schedule::new(2, 1);
    s.place(NodeId(0), ProcId(0), 0, u64::MAX / 2);
    s.place(
        NodeId(1),
        ProcId(0),
        u64::MAX / 2,
        u64::MAX / 2 + u64::MAX / 3,
    );
    assert_eq!(validate(&g, &s), Ok(()));
    let m = ScheduleMetrics::compute(&g, &s);
    assert!(m.speedup >= 0.99, "speedup wrapped: {}", m.speedup);
}
