//! Determinism: with fixed seeds, every component of the stack —
//! generators, schedulers (including the randomized local search and
//! the multi-threaded multi-start variant), and the simulator — must
//! reproduce byte-identical results run-to-run.

use fastsched::algorithms::{FastParallel, FastParallelConfig};
use fastsched::prelude::*;

fn fingerprint(schedule: &Schedule) -> Vec<(u32, u32, u64, u64)> {
    let mut v: Vec<_> = schedule
        .tasks()
        .map(|t| (t.node.0, t.proc.0, t.start, t.finish))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn generators_are_deterministic() {
    let db = TimingDatabase::paragon();
    for seed in [0u64, 1, 99] {
        let a = random_layered_dag(&RandomDagConfig::paper(300, &db), seed);
        let b = random_layered_dag(&RandomDagConfig::paper(300, &db), seed);
        assert!(a.edges().eq(b.edges()));
        assert_eq!(a.weights(), b.weights());
    }
}

#[test]
fn all_schedulers_are_deterministic() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::sparse(150, &db), 4);
    for s in all_schedulers(42) {
        let a = s.schedule(&dag, 32);
        let b = s.schedule(&dag, 32);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} is not deterministic",
            s.name()
        );
    }
}

#[test]
fn fast_seeds_change_the_search_but_not_legality() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(200, &db), 8);
    let mut spans = std::collections::BTreeSet::new();
    for seed in 0..8u64 {
        let fast = Fast::with_config(FastConfig {
            seed,
            max_steps: 256,
            ..Default::default()
        });
        let s = fast.schedule(&dag, 24);
        validate(&dag, &s).unwrap();
        spans.insert(s.makespan());
    }
    // Different seeds explore different neighbourhoods; at least one
    // must still be valid (all are), and the set is non-empty.
    assert!(!spans.is_empty());
}

#[test]
fn multi_start_parallel_is_deterministic_despite_threads() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(200, &db), 12);
    let sched = FastParallel::with_config(FastParallelConfig {
        chains: 8,
        max_steps_per_chain: 128,
        seed: 99,
        threads: 0,
    });
    let a = sched.schedule(&dag, 24);
    let b = sched.schedule(&dag, 24);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn simulator_is_deterministic() {
    let db = TimingDatabase::paragon();
    let dag = gaussian_elimination_dag(8, &db);
    let schedule = Etf::new().schedule(&dag, 16);
    let a = simulate(&dag, &schedule, &SimConfig::default());
    let b = simulate(&dag, &schedule, &SimConfig::default());
    assert_eq!(a, b);
}
