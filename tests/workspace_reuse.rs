//! Workspace-reuse equivalence suite: `schedule_into` against a
//! *dirty* shared [`Workspace`] must be byte-identical to a fresh
//! `schedule()` for every ported algorithm, across the PR-4 fuzz
//! corpus, in any interleaving of DAGs, processor counts and
//! algorithms. The workspace only changes where scratch lives — never
//! a scheduling decision.

use fastsched::algorithms::{Dls, Etf, Fast, FastSa, FastSaConfig, Scheduler, Workspace};
use fastsched::algorithms::{FastParallel, FastParallelConfig, Mcp};
use fastsched::dag::Dag;
use fastsched::schedule::{evaluate_fixed_order_with, io, DeltaEvaluator, ProcId, ProcessorSpeeds};
use fastsched::workloads::fuzz::fuzz_corpus;
use fastsched::{
    algorithms::{schedule_many, schedule_many_par},
    prelude::validate,
};
use proptest::prelude::*;

const CORPUS_SEED: u64 = 0xBA7C;

/// The natively ported schedulers (each overrides `schedule_into`)
/// plus one default-method algorithm (MCP) to pin the fallback path.
fn ported() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fast::new()),
        Box::new(FastSa::with_config(FastSaConfig {
            steps: 96,
            ..Default::default()
        })),
        Box::new(FastParallel::with_config(FastParallelConfig {
            chains: 3,
            max_steps_per_chain: 24,
            ..Default::default()
        })),
        Box::new(Etf::new()),
        Box::new(Dls::new()),
        Box::new(Mcp::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One shared workspace, never cleared, driven across a random
    /// interleaving of (case, algorithm) pairs: every `schedule_into`
    /// result must serialize identically to a fresh `schedule()`.
    #[test]
    fn dirty_workspace_is_byte_identical_to_fresh(
        seed in 0u64..1_000_000,
        walk in 0u64..u64::MAX,
        steps in 8usize..20,
    ) {
        let corpus = fuzz_corpus(CORPUS_SEED ^ seed, 6);
        let schedulers = ported();
        let mut ws = Workspace::new();
        let mut state = walk | 1;
        for k in 0..steps {
            // Cheap LCG walk over (case, scheduler) pairs.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize;
            let case = &corpus[pick % corpus.len()];
            let sched = &schedulers[(pick / 7 + k) % schedulers.len()];
            let fresh = sched.schedule(&case.dag, case.procs);
            let reused = sched.schedule_into(&case.dag, case.procs, &mut ws);
            prop_assert_eq!(validate(&case.dag, &reused), Ok(()));
            prop_assert_eq!(
                io::to_json(&reused),
                io::to_json(&fresh),
                "{} diverged on {} (procs {})",
                sched.name(),
                case.name,
                case.procs
            );
            // Recycling the result is optional for correctness; do it
            // on every other iteration to cover both paths.
            if k % 2 == 0 {
                ws.recycle(reused);
            }
        }
    }

    /// `schedule_many` (one workspace across the batch) must agree
    /// with the per-call API element-wise.
    #[test]
    fn schedule_many_matches_per_call(seed in 0u64..1_000_000) {
        let corpus = fuzz_corpus(CORPUS_SEED.wrapping_add(seed), 5);
        let dags: Vec<Dag> = corpus.iter().map(|c| c.dag.clone()).collect();
        let procs = corpus.iter().map(|c| c.procs).max().unwrap();
        for sched in ported() {
            let batch = schedule_many(sched.as_ref(), &dags, procs);
            prop_assert_eq!(batch.len(), dags.len());
            for (i, dag) in dags.iter().enumerate() {
                prop_assert_eq!(
                    io::to_json(&batch[i]),
                    io::to_json(&sched.schedule(dag, procs)),
                    "{} diverged on batch item {}",
                    sched.name(),
                    i
                );
            }
        }
    }

    /// The sharded batch entry point must be element-wise
    /// byte-identical to the serial `schedule_many` at every worker
    /// count: sharding only changes which thread runs a DAG, never a
    /// scheduling decision (each worker gets its own [`Workspace`]).
    #[test]
    fn schedule_many_par_matches_serial(seed in 0u64..1_000_000) {
        let corpus = fuzz_corpus(CORPUS_SEED.rotate_left(17) ^ seed, 6);
        let dags: Vec<Dag> = corpus.iter().map(|c| c.dag.clone()).collect();
        let procs = corpus.iter().map(|c| c.procs).max().unwrap();
        for sched in ported() {
            let serial: Vec<String> = schedule_many(sched.as_ref(), &dags, procs)
                .iter()
                .map(io::to_json)
                .collect();
            for threads in [1usize, 2, 4, 8] {
                let sharded = schedule_many_par(sched.as_ref(), &dags, procs, threads);
                prop_assert_eq!(sharded.len(), dags.len());
                for (i, s) in sharded.iter().enumerate() {
                    prop_assert_eq!(
                        &io::to_json(s),
                        &serial[i],
                        "{} diverged on item {} at {} threads",
                        sched.name(),
                        i,
                        threads
                    );
                }
            }
        }
    }

    /// The evaluator reset path under a heterogeneous cost model: a
    /// reused `DeltaEvaluator<ProcessorSpeeds>` re-initialized via
    /// `reset` must match both a freshly constructed evaluator and the
    /// full-replay reference on every corpus case.
    #[test]
    fn hetero_evaluator_reset_matches_fresh(seed in 0u64..1_000_000) {
        let corpus = fuzz_corpus(!CORPUS_SEED ^ seed, 5);
        // The model outlives every reset (reset changes the problem,
        // not the machine); corpus cases use at most 6 processors.
        let model = ProcessorSpeeds::new(vec![100, 75, 50, 100, 75, 50, 100, 75]);
        let mut reused: Option<DeltaEvaluator<ProcessorSpeeds>> = None;
        for case in &corpus {
            let order: Vec<_> = case.dag.topo_order().to_vec();
            let assignment: Vec<ProcId> = (0..case.dag.node_count())
                .map(|i| ProcId((i as u32 * 7 + 3) % case.procs))
                .collect();
            let fresh = DeltaEvaluator::with_model(
                model.clone(), &case.dag, order.clone(), assignment.clone(), case.procs,
            );
            let eval = match reused.as_mut() {
                Some(e) => {
                    e.reset(&case.dag, &order, &assignment, case.procs);
                    e
                }
                None => {
                    reused = Some(DeltaEvaluator::with_model(
                        model.clone(), &case.dag, order.clone(), assignment.clone(), case.procs,
                    ));
                    reused.as_mut().unwrap()
                }
            };
            let reference =
                evaluate_fixed_order_with(&model, &case.dag, &order, &assignment, case.procs);
            prop_assert_eq!(eval.makespan(), fresh.makespan(), "reset vs fresh on {}", case.name);
            prop_assert_eq!(eval.makespan(), reference.makespan(), "reset vs replay on {}", case.name);
        }
    }
}
