//! Property-based tests (proptest) over randomly generated DAGs: the
//! §2 attribute invariants, the CPN-Dominate list contract, scheduler
//! legality, FAST's never-worsen guarantee, and simulator
//! conservation.

use fastsched::dag::topo::is_topological_order;
use fastsched::dag::{classify_nodes, cpn_dominate_list, CpnListConfig, NodeClass};
use fastsched::prelude::*;
use proptest::prelude::*;

/// Strategy: a random layered DAG with 2..=60 nodes and varied
/// weights, built through the public generator (which guarantees
/// acyclicity by construction).
fn arb_dag() -> impl Strategy<Value = Dag> {
    (2usize..60, 0u64..1_000_000, 1u64..40, 1u64..120).prop_map(|(nodes, seed, w_hi, c_hi)| {
        let config = RandomDagConfig {
            nodes,
            out_degree: (1, 4),
            node_weight: (1, w_hi.max(2)),
            edge_weight: (1, c_hi.max(2)),
        };
        random_layered_dag(&config, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn t_plus_b_bounded_by_cp_with_equality_exactly_on_cpns(dag in arb_dag()) {
        let attrs = GraphAttributes::compute(&dag);
        for n in dag.nodes() {
            let sum = attrs.t_level[n.index()] + attrs.b_level[n.index()];
            prop_assert!(sum <= attrs.cp_length);
            prop_assert_eq!(sum == attrs.cp_length, attrs.is_cpn(n));
            // ASAP <= ALAP always; equality exactly on CPNs (§2).
            prop_assert!(attrs.t_level[n.index()] <= attrs.alap[n.index()]);
            prop_assert_eq!(
                attrs.t_level[n.index()] == attrs.alap[n.index()],
                attrs.is_cpn(n)
            );
            // SL <= b-level (dropping communication can't lengthen).
            prop_assert!(attrs.static_level[n.index()] <= attrs.b_level[n.index()]);
        }
    }

    #[test]
    fn every_dag_has_a_cpn_entry_and_cpn_exit(dag in arb_dag()) {
        let attrs = GraphAttributes::compute(&dag);
        prop_assert!(dag.nodes().any(|n| attrs.is_cpn(n) && dag.is_entry(n)));
        prop_assert!(dag.nodes().any(|n| attrs.is_cpn(n) && dag.is_exit(n)));
    }

    #[test]
    fn classification_is_total_and_parents_of_cpns_are_never_obn(dag in arb_dag()) {
        let attrs = GraphAttributes::compute(&dag);
        let classes = classify_nodes(&dag, &attrs);
        for n in dag.nodes() {
            if attrs.is_cpn(n) {
                for e in dag.preds(n) {
                    prop_assert_ne!(classes[e.node.index()], NodeClass::Obn,
                        "a parent of a CPN reaches a CPN, so it cannot be an OBN");
                }
            }
        }
    }

    #[test]
    fn cpn_dominate_list_is_a_topological_permutation(dag in arb_dag()) {
        let attrs = GraphAttributes::compute(&dag);
        let classes = classify_nodes(&dag, &attrs);
        let list = cpn_dominate_list(&dag, &attrs, &classes, CpnListConfig::default());
        prop_assert!(is_topological_order(&dag, &list));
        // The entry CPN with t-level 0 is first (§4.1 step 1).
        prop_assert!(attrs.is_cpn(list[0]) && dag.is_entry(list[0]));
    }

    #[test]
    fn all_schedulers_stay_legal_and_bounded(dag in arb_dag()) {
        let procs = dag.node_count() as u32;
        // Any sensible schedule fits below all-work-plus-all-messages.
        // (Plain serial time is NOT an upper bound for every algorithm:
        // DSC's unbounded clustering gives each entry node its own
        // cluster and willingly pays communication.)
        let upper = dag.total_computation() + dag.total_communication();
        for s in paper_schedulers(7) {
            let schedule = s.schedule(&dag, procs);
            prop_assert!(validate(&dag, &schedule).is_ok(),
                "{} produced an illegal schedule", s.name());
            prop_assert!(schedule.makespan() <= upper,
                "{}: makespan {} above {}", s.name(), schedule.makespan(), upper);
        }
    }

    #[test]
    fn fast_local_search_never_worsens(dag in arb_dag()) {
        let procs = (dag.node_count() as u32).max(2);
        let fast = Fast::new();
        let (initial, _, _) = fast.initial_schedule(&dag, procs);
        let refined = fast.schedule(&dag, procs);
        prop_assert!(refined.makespan() <= initial.makespan());
    }

    #[test]
    fn simulator_conserves_tasks_and_dominates_prediction(dag in arb_dag()) {
        let schedule = Fast::new().schedule(&dag, (dag.node_count() as u32).min(16));
        let report = simulate(&dag, &schedule, &SimConfig::default());
        // Every task finished exactly once, after its weight elapsed.
        prop_assert_eq!(report.finish_times.len(), dag.node_count());
        for n in dag.nodes() {
            prop_assert!(report.finish_times[n.index()] >= dag.weight(n));
        }
        // Remote messages: one per cross-processor edge.
        let cross = dag
            .edges()
            .filter(|&(a, b, _)| schedule.proc_of(a) != schedule.proc_of(b))
            .count() as u64;
        prop_assert_eq!(report.messages, cross);
        // The network can only delay the abstract model.
        prop_assert!(report.execution_time >= schedule.makespan());
        // And the ideal network reproduces it exactly.
        let ideal = simulate(&dag, &schedule, &SimConfig::ideal());
        prop_assert_eq!(ideal.execution_time, schedule.makespan());
    }

    #[test]
    fn evaluator_roundtrips_any_assignment(dag in arb_dag(), procs in 1u32..8, seed in 0u64..1000) {
        use fastsched::schedule::evaluate::evaluate_fixed_order;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let assignment: Vec<ProcId> =
            dag.nodes().map(|_| ProcId(rng.gen_range(0..procs))).collect();
        let schedule = evaluate_fixed_order(&dag, &order, &assignment, procs);
        prop_assert!(validate(&dag, &schedule).is_ok());
        for n in dag.nodes() {
            prop_assert_eq!(schedule.proc_of(n), Some(assignment[n.index()]));
        }
    }

    #[test]
    fn dag_json_roundtrip(dag in arb_dag()) {
        use fastsched::dag::io;
        let json = io::to_json(&dag).unwrap();
        let back = io::from_json(&json).unwrap();
        prop_assert_eq!(dag.node_count(), back.node_count());
        prop_assert_eq!(dag.edge_count(), back.edge_count());
        prop_assert!(dag.edges().eq(back.edges()));
        prop_assert_eq!(dag.weights(), back.weights());
    }

    #[test]
    fn chain_merge_preserves_work_and_schedulability(dag in arb_dag()) {
        use fastsched::dag::transform::merge_linear_chains;
        let merged = merge_linear_chains(&dag);
        prop_assert!(merged.dag.node_count() <= dag.node_count());
        prop_assert_eq!(merged.dag.total_computation(), dag.total_computation());
        // Membership is a total map onto the coarse node set.
        prop_assert_eq!(merged.membership.len(), dag.node_count());
        for &m in &merged.membership {
            prop_assert!(m.index() < merged.dag.node_count());
        }
        // The coarse graph schedules legally.
        let s = Fast::new().schedule(&merged.dag, merged.dag.node_count() as u32);
        prop_assert!(validate(&merged.dag, &s).is_ok());
    }

    #[test]
    fn comm_scaling_moves_cp_length_monotonically(dag in arb_dag()) {
        use fastsched::dag::transform::scale_communication;
        let half = scale_communication(&dag, 1, 2);
        let double = scale_communication(&dag, 2, 1);
        let cp = |d: &Dag| GraphAttributes::compute(d).cp_length;
        prop_assert!(cp(&half) <= cp(&dag));
        prop_assert!(cp(&double) >= cp(&dag));
    }

    #[test]
    fn bottleneck_chain_is_temporally_ordered_and_ends_at_makespan(dag in arb_dag()) {
        use fastsched::schedule::analysis::bottleneck_chain;
        let schedule = Fast::new().schedule(&dag, (dag.node_count() as u32).min(8));
        let chain = bottleneck_chain(&dag, &schedule);
        prop_assert!(!chain.is_empty());
        let last = chain.last().unwrap().node;
        prop_assert_eq!(schedule.finish_of(last), Some(schedule.makespan()));
        for w in chain.windows(2) {
            let a = schedule.task(w[0].node).unwrap();
            let b = schedule.task(w[1].node).unwrap();
            prop_assert!(a.finish <= b.start, "chain must move forward in time");
        }
    }

    #[test]
    fn extension_schedulers_stay_legal(dag in arb_dag()) {
        // The full registry (minus B&B) on every random graph.
        for s in all_schedulers(13) {
            let schedule = s.schedule(&dag, dag.node_count() as u32);
            prop_assert!(validate(&dag, &schedule).is_ok(),
                "{} produced an illegal schedule", s.name());
        }
    }

    #[test]
    fn dsh_duplication_schedules_are_legal_and_no_worse_than_hlfet(dag in arb_dag()) {
        use fastsched::algorithms::duplication::{validate_dup, Dsh};
        let procs = (dag.node_count() as u32).clamp(2, 8);
        let dup = Dsh::new().schedule(&dag, procs);
        prop_assert!(validate_dup(&dag, &dup).is_ok());
        // DSH extends the same SL-list scheduler with optional
        // duplication accepted only when it helps a node's start, so
        // it should rarely lose to HLFET — never by more than the
        // largest single weight (ordering noise).
        let plain = Hlfet::new().schedule(&dag, procs).makespan();
        let wmax = dag.weights().iter().copied().max().unwrap_or(0);
        prop_assert!(dup.makespan() <= plain + wmax,
            "DSH {} vs HLFET {plain}", dup.makespan());
    }

    #[test]
    fn text_format_roundtrips(dag in arb_dag()) {
        use fastsched::dag::io_text;
        let text = io_text::to_text(&dag);
        let back = io_text::from_text(&text).unwrap();
        prop_assert_eq!(dag.node_count(), back.node_count());
        prop_assert!(dag.edges().eq(back.edges()));
        prop_assert_eq!(dag.weights(), back.weights());
    }

    #[test]
    fn fast_parallel_is_byte_identical_across_worker_thread_counts(
        dag in arb_dag(),
        seed in 0u64..10_000,
    ) {
        // Determinism contract of the `parallel` feature: the chain
        // count and seed fix the result; the thread partitioning must
        // be unobservable. Serialize and compare bytes so processor
        // numbering and every start/finish time are covered.
        use fastsched::algorithms::fast_parallel::{FastParallel, FastParallelConfig};
        let procs = (dag.node_count() as u32).clamp(2, 8);
        let run = |threads: u32| {
            let s = FastParallel::with_config(FastParallelConfig {
                chains: 4,
                max_steps_per_chain: 32,
                seed,
                threads,
            })
            .schedule(&dag, procs);
            fastsched::schedule::io::to_json(&s)
        };
        let one = run(1);
        prop_assert_eq!(&run(2), &one, "2 workers diverged from 1");
        prop_assert_eq!(&run(8), &one, "8 workers diverged from 1");
    }

    #[test]
    fn hetero_heft_is_legal_and_uniform_reduces_to_homogeneous(dag in arb_dag()) {
        use fastsched::algorithms::hetero::{validate_hetero, HeftHetero, ProcessorSpeeds};
        let speeds = ProcessorSpeeds::new(vec![100, 250, 50, 100]);
        let s = HeftHetero::new(speeds.clone()).schedule(&dag);
        prop_assert!(validate_hetero(&dag, &s, &speeds).is_ok());
        let uniform = ProcessorSpeeds::uniform(4);
        let hu = HeftHetero::new(uniform).schedule(&dag);
        let homo = fastsched::algorithms::Heft::new().schedule(&dag, 4);
        prop_assert_eq!(hu.makespan(), homo.makespan());
    }

    #[test]
    fn unbounded_memory_capacities_are_byte_identical_to_schedule(
        dag in arb_dag(),
        mem_seed in 0u64..10_000,
    ) {
        // The memory dimension's zero-cost contract: footprints on the
        // DAG plus a capacity model with no finite entry must leave
        // every placement decision untouched, bit for bit.
        use fastsched::schedule::{HomogeneousModel, MemoryCapacities};
        use fastsched::workloads::fuzz::assign_mems;
        let dag = assign_mems(&dag, mem_seed);
        let procs = (dag.node_count() as u32).clamp(2, 8);
        let unbounded = MemoryCapacities::unbounded(HomogeneousModel);
        prop_assert_eq!(
            Fast::new().schedule_with_model(&dag, procs, &unbounded),
            Fast::new().schedule(&dag, procs),
            "FAST: a never-binding capacity model changed the schedule"
        );
        prop_assert_eq!(
            Heft::new().schedule_with_model(&dag, procs, &unbounded),
            Heft::new().schedule(&dag, procs),
            "HEFT: a never-binding capacity model changed the schedule"
        );
    }

    #[test]
    fn capped_schedules_always_validate_under_their_own_budget(
        dag in arb_dag(),
        mem_seed in 0u64..10_000,
    ) {
        // Feasible-by-construction budget (twice the balanced share,
        // floored by the largest footprint): memory-aware FAST and
        // HEFT must always find and return a legal packing.
        use fastsched::schedule::{validate_with, HomogeneousModel, MemoryCapacities};
        use fastsched::workloads::fuzz::assign_mems;
        let dag = assign_mems(&dag, mem_seed);
        let procs = (dag.node_count() as u32).clamp(2, 8);
        let total: u64 = dag.mems().iter().sum();
        let max_mem = dag.mems().iter().copied().max().unwrap_or(0);
        let cap = 2 * (total.div_ceil(u64::from(procs))).max(max_mem);
        let model = MemoryCapacities::uniform(HomogeneousModel, cap, procs);
        let fast = Fast::new().schedule_with_model(&dag, procs, &model);
        prop_assert_eq!(validate_with(&model, &dag, &fast), Ok(()));
        let heft = Heft::new().schedule_with_model(&dag, procs, &model);
        prop_assert_eq!(validate_with(&model, &dag, &heft), Ok(()));
    }
}
