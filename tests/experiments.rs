//! Shape regression tests: scaled-down versions of the paper's
//! experiments asserting the qualitative claims EXPERIMENTS.md reports,
//! so the reproduction cannot silently drift. Margins are generous —
//! these pin *shapes* (who wins, by what order), not exact numbers.

use fastsched::prelude::*;
use std::time::Instant;

fn exec_time(dag: &Dag, s: &dyn Scheduler, procs: u32) -> u64 {
    let schedule = s.schedule(dag, procs);
    validate(dag, &schedule).unwrap();
    simulate(dag, &schedule, &SimConfig::default()).execution_time
}

#[test]
fn figure5_shape_gauss_fast_leads_md_trails() {
    let db = TimingDatabase::paragon();
    let dag = gaussian_elimination_dag(8, &db);
    let procs = 20;
    let fast = exec_time(&dag, &Fast::new(), procs);
    let md = exec_time(&dag, &Md::new(), procs);
    let dsc = exec_time(&dag, &Dsc::new(), procs);
    // MD is the clear loser on Gauss (paper Fig. 5(a) direction).
    assert!(md as f64 >= fast as f64 * 1.05, "MD {md} vs FAST {fast}");
    // DSC does not beat FAST on the simulated machine.
    assert!(dsc >= fast, "DSC {dsc} vs FAST {fast}");
}

#[test]
fn figure5b_shape_dsc_uses_far_more_processors() {
    let db = TimingDatabase::paragon();
    let dag = gaussian_elimination_dag(16, &db);
    let fast = Fast::new().schedule(&dag, dag.node_count() as u32);
    let dsc = Dsc::new().schedule(&dag, dag.node_count() as u32);
    let md = Md::new().schedule(&dag, dag.node_count() as u32);
    assert!(
        dsc.processors_used() >= 3 * fast.processors_used(),
        "DSC {} vs FAST {}",
        dsc.processors_used(),
        fast.processors_used()
    );
    // MD packs tightly (paper Fig. 5(b): 2–7 where others use N).
    assert!(md.processors_used() < fast.processors_used());
}

#[test]
fn figure6_shape_laplace_fast_beats_md_and_dls() {
    let db = TimingDatabase::paragon();
    let dag = laplace_dag(16, &db);
    let procs = 34;
    let fast = exec_time(&dag, &Fast::new(), procs);
    let md = exec_time(&dag, &Md::new(), procs);
    let dls = exec_time(&dag, &Dls::new(), procs);
    assert!(md as f64 >= fast as f64 * 1.02, "MD {md} vs FAST {fast}");
    assert!(dls as f64 >= fast as f64 * 0.98, "DLS {dls} vs FAST {fast}");
}

#[test]
fn figure7_shape_fft_dsc_pays_for_processors() {
    let db = TimingDatabase::paragon();
    let dag = fft_dag(128, &db);
    let procs = dag.node_count() as u32;
    let fast = Fast::new().schedule(&dag, procs);
    let dsc = Dsc::new().schedule(&dag, procs);
    assert!(dsc.processors_used() >= 2 * fast.processors_used());
    let fast_exec = simulate(&dag, &fast, &SimConfig::default()).execution_time;
    let dsc_exec = simulate(&dag, &dsc, &SimConfig::default()).execution_time;
    assert!(dsc_exec >= fast_exec, "DSC {dsc_exec} vs FAST {fast_exec}");
}

#[test]
fn figure8_shape_pair_scanners_cost_an_order_of_magnitude_more() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(800, &db), 2);
    let procs = 256;

    let time_of = |s: &dyn Scheduler| {
        // Fastest of two runs to suppress scheduling jitter.
        let mut best = std::time::Duration::MAX;
        for _ in 0..2 {
            let t0 = Instant::now();
            let schedule = s.schedule(&dag, procs);
            best = best.min(t0.elapsed());
            validate(&dag, &schedule).unwrap();
        }
        best
    };
    let fast = time_of(&Fast::new());
    let etf = time_of(&Etf::new());
    let dls = time_of(&Dls::new());
    assert!(
        etf > fast * 5,
        "ETF {etf:?} should dwarf FAST {fast:?} (paper Fig. 8(c))"
    );
    assert!(dls > fast * 5, "DLS {dls:?} vs FAST {fast:?}");
}

#[test]
fn figure8_shape_quality_band_and_processor_blowup() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(800, &db), 2);
    let procs = 256;
    let fast = Fast::new().schedule(&dag, procs);
    let dsc = Dsc::new().schedule(&dag, procs);
    let etf = Etf::new().schedule(&dag, procs);
    // Schedule lengths live within a ±12% band of each other (paper:
    // ±12% spread across the four algorithms).
    let (f, d, e) = (
        fast.makespan() as f64,
        dsc.makespan() as f64,
        etf.makespan() as f64,
    );
    assert!((d / f - 1.0).abs() < 0.12, "DSC/FAST = {:.3}", d / f);
    assert!((e / f - 1.0).abs() < 0.12, "ETF/FAST = {:.3}", e / f);
    // DSC's processor usage explodes (paper: ~8× FAST's).
    assert!(dsc.processors_used() >= 3 * fast.processors_used());
}

#[test]
fn fast_scheduling_time_grows_near_linearly() {
    let db = TimingDatabase::paragon();
    let small = random_layered_dag(&RandomDagConfig::paper(400, &db), 3);
    let large = random_layered_dag(&RandomDagConfig::paper(1600, &db), 3);
    let time_of = |dag: &Dag| {
        let fast = Fast::new();
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = fast.schedule(dag, 256);
            best = best.min(t0.elapsed());
        }
        best
    };
    let ts = time_of(&small);
    let tl = time_of(&large);
    // Edges grow ~4.2×; a linear algorithm stays well under 12× (the
    // slack absorbs cache effects and allocator noise).
    assert!(
        tl < ts * 12,
        "FAST at 1600 nodes took {tl:?} vs {ts:?} at 400 — superlinear?"
    );
}
