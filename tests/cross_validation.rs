//! Cross-validation: every scheduler in the workspace must produce a
//! legal schedule on every workload family, and the schedules must
//! respect universal bounds (critical-path work below, serial time
//! above). This is the safety net behind every benchmark number.

use fastsched::prelude::*;
use fastsched::workloads::trees::{binary_in_tree, binary_out_tree, divide_and_conquer};

fn workloads() -> Vec<(String, Dag)> {
    let db = TimingDatabase::paragon();
    vec![
        ("gauss4".into(), gaussian_elimination_dag(4, &db)),
        ("gauss8".into(), gaussian_elimination_dag(8, &db)),
        ("laplace4".into(), laplace_dag(4, &db)),
        ("laplace8".into(), laplace_dag(8, &db)),
        ("fft16".into(), fft_dag(16, &db)),
        ("fft64".into(), fft_dag(64, &db)),
        ("in_tree".into(), binary_in_tree(4, &db)),
        ("out_tree".into(), binary_out_tree(4, &db)),
        ("divconq".into(), divide_and_conquer(3, &db)),
        (
            "random_dense".into(),
            random_layered_dag(&RandomDagConfig::paper(120, &db), 5),
        ),
        (
            "random_sparse".into(),
            random_layered_dag(&RandomDagConfig::sparse(200, &db), 6),
        ),
    ]
}

/// Computation along a critical path: a lower bound every schedule of
/// every algorithm must respect.
fn cp_work(dag: &Dag) -> u64 {
    let attrs = GraphAttributes::compute(dag);
    attrs
        .critical_path(dag)
        .iter()
        .map(|&n| dag.weight(n))
        .sum()
}

#[test]
fn every_scheduler_is_legal_on_every_workload() {
    for (wname, dag) in workloads() {
        let lower = cp_work(&dag);
        let upper = dag.total_computation();
        for s in all_schedulers(11) {
            let schedule = s.schedule(&dag, dag.node_count() as u32);
            validate(&dag, &schedule).unwrap_or_else(|e| panic!("{} on {wname}: {e}", s.name()));
            let m = schedule.makespan();
            assert!(
                m >= lower && m <= upper,
                "{} on {wname}: makespan {m} outside [{lower}, {upper}]",
                s.name()
            );
            assert!(schedule.processors_used() >= 1);
        }
    }
}

#[test]
fn schedulers_are_legal_under_processor_scarcity() {
    // Two processors only — forces heavy sharing and exercises the
    // ready-time/insertion logic under pressure.
    for (wname, dag) in workloads() {
        for s in all_schedulers(13) {
            // Clustering algorithms ignore the bound by design.
            if s.is_unbounded() {
                continue;
            }
            let schedule = s.schedule(&dag, 2);
            validate(&dag, &schedule)
                .unwrap_or_else(|e| panic!("{} on {wname} (p=2): {e}", s.name()));
            assert!(schedule.processors_used() <= 2);
        }
    }
}

#[test]
fn simulation_is_consistent_for_every_scheduler() {
    let db = TimingDatabase::paragon();
    let dag = gaussian_elimination_dag(8, &db);
    for s in all_schedulers(17) {
        let schedule = s.schedule(&dag, dag.node_count() as u32);
        let ideal = simulate(&dag, &schedule, &SimConfig::ideal());
        assert_eq!(
            ideal.execution_time,
            schedule.makespan(),
            "{}: ideal network must reproduce the static prediction",
            s.name()
        );
        let mesh = simulate(&dag, &schedule, &SimConfig::default());
        assert!(
            mesh.execution_time >= schedule.makespan(),
            "{}: the mesh cannot beat the abstract model",
            s.name()
        );
    }
}

#[test]
fn single_processor_forces_serial_time() {
    let db = TimingDatabase::paragon();
    let dag = fft_dag(16, &db);
    for s in all_schedulers(19) {
        if s.is_unbounded() {
            continue; // unbounded clustering model
        }
        let schedule = s.schedule(&dag, 1);
        validate(&dag, &schedule).unwrap();
        assert_eq!(
            schedule.makespan(),
            dag.total_computation(),
            "{}: one processor means serial execution",
            s.name()
        );
    }
}

#[test]
fn heuristics_never_beat_the_exhaustive_oracle_on_small_workloads() {
    // The quality side of cross-validation: on instances small enough
    // to solve exactly, the branch-and-bound optimum is a hard floor
    // under every processor-bounded heuristic. `solve` (not
    // `schedule`) so a state-cap truncation — whose incumbent proves
    // no bound — is detected instead of silently asserted against.
    use fastsched::algorithms::optimal::BranchAndBound;
    let db = TimingDatabase::paragon();
    let small: Vec<(String, Dag, u32)> = vec![
        ("gauss3".into(), gaussian_elimination_dag(3, &db), 3),
        ("fft4".into(), fft_dag(4, &db), 3),
        ("divconq2".into(), divide_and_conquer(2, &db), 3),
        ("in_tree3".into(), binary_in_tree(3, &db), 2),
        ("out_tree3".into(), binary_out_tree(3, &db), 2),
    ];
    // gauss3 x 3 procs needs ~5.9M states — just past the default cap.
    let oracle = BranchAndBound {
        max_states: 10_000_000,
    };
    for (wname, dag, procs) in small {
        let outcome = oracle.solve(&dag, procs);
        assert!(
            outcome.complete,
            "{wname}: oracle search truncated — shrink the workload or raise the cap"
        );
        let optimum = outcome.schedule.makespan();
        for s in all_schedulers(29) {
            if s.is_unbounded() {
                continue; // clustering may exceed the oracle's pool
            }
            let m = s.schedule(&dag, procs).makespan();
            assert!(
                m >= optimum,
                "{wname}: {} produced {m} below the exact optimum {optimum}",
                s.name()
            );
        }
    }
}

#[test]
fn metrics_agree_with_schedule_for_every_scheduler() {
    let db = TimingDatabase::paragon();
    let dag = laplace_dag(4, &db);
    for s in all_schedulers(23) {
        let schedule = s.schedule(&dag, dag.node_count() as u32);
        let m = ScheduleMetrics::compute(&dag, &schedule);
        assert_eq!(m.makespan, schedule.makespan());
        assert_eq!(m.processors_used, schedule.processors_used());
        assert!(m.speedup > 0.0 && m.efficiency > 0.0);
        assert!(m.utilization <= 1.0 + 1e-9);
    }
}
