//! Zero-allocation steady-state harness: after a warm-up call, a
//! reused [`Workspace`] must make `schedule_into` perform **zero**
//! heap allocations on the paper's 2000-node random workload.
//!
//! The allocation assertion is only armed in release builds without
//! the `validate`/`trace` features (debug assertions and the
//! validation gate allocate by design — see DESIGN.md §12); the
//! byte-identity assertions run in every configuration, so the test
//! is never vacuous.

use fastsched::counting_alloc::CountingAlloc;
use fastsched::prelude::*;
use fastsched::schedule::io::to_json;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// True when the build is expected to be allocation-free in steady
/// state: release, no validation gate, no trace capture.
const fn steady_state_armed() -> bool {
    cfg!(all(
        not(debug_assertions),
        not(feature = "validate"),
        not(feature = "trace")
    ))
}

fn assert_steady_state(name: &str, dag: &Dag, procs: u32, sched: &dyn Scheduler) {
    let mut ws = Workspace::new();
    // Warm-up: the first call grows every buffer to its peak size;
    // the second call runs against warm capacity (commit-path lane
    // growth included, because the seeded search replays the same
    // trajectory).
    let first = sched.schedule_into(dag, procs, &mut ws);
    let reference = to_json(&first);
    ws.recycle(first);
    let second = sched.schedule_into(dag, procs, &mut ws);
    assert_eq!(to_json(&second), reference, "{name}: warm call diverged");
    ws.recycle(second);

    for i in 0..3 {
        let before = ALLOC.allocations();
        let s = sched.schedule_into(dag, procs, &mut ws);
        let allocated = ALLOC.allocations() - before;
        if steady_state_armed() {
            assert_eq!(
                allocated, 0,
                "{name}: iteration {i} performed {allocated} heap allocations"
            );
        }
        assert_eq!(to_json(&s), reference, "{name}: iteration {i} diverged");
        ws.recycle(s);
    }
}

/// The acceptance workload: FAST over the paper-scale 2000-node
/// random DAG.
#[test]
fn fast_is_allocation_free_on_the_2000_node_workload() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(2000, &db), 1);
    assert_steady_state("FAST/2000", &dag, 64, &Fast::new());
}

/// The other natively ported single-threaded algorithms on a smaller
/// graph (ETF/DLS are Θ(p v²)-ish; graph size is irrelevant to the
/// allocation property).
#[test]
fn ported_algorithms_are_allocation_free() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(300, &db), 7);
    assert_steady_state("FAST/300", &dag, 8, &Fast::new());
    assert_steady_state("ETF/300", &dag, 8, &Etf::new());
    assert_steady_state("DLS/300", &dag, 8, &Dls::new());
    assert_steady_state(
        "FAST-SA/300",
        &dag,
        8,
        &fastsched::algorithms::FastSa::with_config(fastsched::algorithms::FastSaConfig {
            steps: 256,
            ..Default::default()
        }),
    );
}
