//! Property-based equivalence of the incremental [`DeltaEvaluator`]
//! against the full fixed-order replay: over random layered DAGs and
//! random transfer/commit/revert sequences, every probe's makespan and
//! every committed start/finish time must be **bit-identical** to
//! [`evaluate_fixed_order`] on the same order and assignment. This is
//! the contract that lets the FAST search drivers swap the evaluator
//! without changing a single accept/reject decision.

use fastsched::prelude::*;
use fastsched::schedule::{evaluate_fixed_order, DeltaEvaluator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random layered DAG through the public generator (acyclic by
/// construction). Small communication ranges keep co-located parents
/// frequent; wide ranges exercise the remote-message paths.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (2usize..50, 0u64..1_000_000, 1u64..30, 1u64..100).prop_map(|(nodes, seed, w_hi, c_hi)| {
        let config = RandomDagConfig {
            nodes,
            out_degree: (1, 4),
            node_weight: (1, w_hi.max(2)),
            edge_weight: (1, c_hi.max(2)),
        };
        random_layered_dag(&config, seed)
    })
}

/// Assert the evaluator's committed state matches a fresh full replay
/// of its (order, assignment) — identical makespan and identical
/// start/finish time for every node.
fn assert_bit_identical(dag: &Dag, eval: &DeltaEvaluator, procs: u32) -> Result<(), TestCaseError> {
    let full = evaluate_fixed_order(dag, eval.order(), eval.assignment(), procs);
    prop_assert_eq!(eval.makespan(), full.makespan());
    for n in dag.nodes() {
        let t = full.task(n).unwrap();
        prop_assert_eq!(eval.start_times()[n.index()], t.start, "start of {:?}", n);
        prop_assert_eq!(
            eval.finish_times()[n.index()],
            t.finish,
            "finish of {:?}",
            n
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random transfer/commit/revert walks: every probe's makespan
    /// matches a full replay of the probed assignment, and after every
    /// resolution the committed state matches a full replay.
    #[test]
    fn random_transfer_walks_are_bit_identical(
        dag in arb_dag(),
        procs in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let mut shadow: Vec<ProcId> =
            dag.nodes().map(|_| ProcId(rng.gen_range(0..procs))).collect();
        let mut eval = DeltaEvaluator::new(&dag, order.clone(), shadow.clone(), procs);
        assert_bit_identical(&dag, &eval, procs)?;

        for step in 0..60 {
            let n = NodeId(rng.gen_range(0..dag.node_count() as u32));
            let p = ProcId(rng.gen_range(0..procs));
            let old = shadow[n.index()];
            shadow[n.index()] = p;
            let expect = evaluate_fixed_order(&dag, &order, &shadow, procs).makespan();
            let got = eval.probe_transfer(&dag, n, p);
            prop_assert_eq!(got, expect, "probe {}: {:?} -> {:?}", step, n, p);
            if rng.gen::<f64>() < 0.5 {
                eval.commit();
            } else {
                eval.revert();
                shadow[n.index()] = old;
            }
            prop_assert_eq!(eval.assignment(), &shadow[..]);
            assert_bit_identical(&dag, &eval, procs)?;
        }
    }

    /// Entry nodes have no parents (DAT 0 on every processor) and
    /// exercise the ready-time-only path; force many entry transfers.
    #[test]
    fn entry_node_transfers_are_bit_identical(
        dag in arb_dag(),
        procs in 2u32..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let entries: Vec<NodeId> = dag.entry_nodes();
        let mut shadow = vec![ProcId(0); dag.node_count()];
        let mut eval = DeltaEvaluator::new(&dag, order.clone(), shadow.clone(), procs);

        for _ in 0..30 {
            let n = entries[rng.gen_range(0..entries.len())];
            let p = ProcId(rng.gen_range(0..procs));
            let old = shadow[n.index()];
            shadow[n.index()] = p;
            let expect = evaluate_fixed_order(&dag, &order, &shadow, procs).makespan();
            prop_assert_eq!(eval.probe_transfer(&dag, n, p), expect);
            if rng.gen::<f64>() < 0.7 {
                eval.commit();
            } else {
                eval.revert();
                shadow[n.index()] = old;
            }
            assert_bit_identical(&dag, &eval, procs)?;
        }
    }

    /// All nodes start co-located on one processor, so every parent
    /// edge begins as a free local message; transfers must start
    /// charging (and un-charging, on revert) exactly the right edges.
    #[test]
    fn colocated_start_transfers_are_bit_identical(
        dag in arb_dag(),
        procs in 2u32..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let order: Vec<NodeId> = dag.topo_order().to_vec();
        let mut shadow = vec![ProcId(0); dag.node_count()];
        let mut eval = DeltaEvaluator::new(&dag, order.clone(), shadow.clone(), procs);

        for _ in 0..40 {
            let n = NodeId(rng.gen_range(0..dag.node_count() as u32));
            // Bias towards moving back to P0, re-co-locating families.
            let p = if rng.gen::<f64>() < 0.4 {
                ProcId(0)
            } else {
                ProcId(rng.gen_range(0..procs))
            };
            let old = shadow[n.index()];
            shadow[n.index()] = p;
            let expect = evaluate_fixed_order(&dag, &order, &shadow, procs).makespan();
            prop_assert_eq!(eval.probe_transfer(&dag, n, p), expect);
            if rng.gen::<f64>() < 0.5 {
                eval.commit();
            } else {
                eval.revert();
                shadow[n.index()] = old;
            }
            assert_bit_identical(&dag, &eval, procs)?;
        }
    }
}
