//! Schedule-quality assurance against the exhaustive branch-and-bound
//! reference on small graphs: no heuristic may beat the best non-delay
//! schedule (that would mean a broken evaluator), and FAST must stay
//! within a modest factor of it — the paper's "high quality at low
//! complexity" claim in miniature.

use fastsched::algorithms::BranchAndBound;
use fastsched::prelude::*;

fn small_dags() -> Vec<(String, Dag)> {
    let db = TimingDatabase::paragon();
    let mut out = vec![
        (
            "figure1".to_string(),
            fastsched::dag::examples::paper_figure1(),
        ),
        (
            "fork_join".to_string(),
            fastsched::dag::examples::fork_join(4, 30, 10),
        ),
        (
            "chain".to_string(),
            fastsched::dag::examples::chain(7, 10, 25),
        ),
    ];
    for seed in 0..4u64 {
        let cfg = RandomDagConfig {
            nodes: 9,
            out_degree: (1, 3),
            node_weight: (10, 80),
            edge_weight: (5, 120),
        };
        out.push((format!("random{seed}"), random_layered_dag(&cfg, seed)));
        let _ = &db;
    }
    out
}

#[test]
fn no_heuristic_beats_the_exhaustive_reference() {
    let reference = BranchAndBound::new();
    for (name, dag) in small_dags() {
        let opt = reference.schedule(&dag, 3).makespan();
        for s in all_schedulers(29) {
            if s.is_unbounded() {
                continue; // they may use more than 3 processors
            }
            let h = s.schedule(&dag, 3).makespan();
            assert!(
                h >= opt,
                "{} found {h} < reference optimum {opt} on {name}",
                s.name()
            );
        }
    }
}

#[test]
fn fast_stays_close_to_optimal_on_small_graphs() {
    let reference = BranchAndBound::new();
    let fast = Fast::new();
    let mut total_ratio = 0.0;
    let mut count = 0;
    for (name, dag) in small_dags() {
        let opt = reference.schedule(&dag, 3).makespan();
        let got = fast.schedule(&dag, 3).makespan();
        let ratio = got as f64 / opt as f64;
        assert!(
            ratio <= 1.5,
            "FAST {got} vs optimum {opt} on {name} (ratio {ratio:.2})"
        );
        total_ratio += ratio;
        count += 1;
    }
    // On average FAST should be within 20% of the non-delay optimum.
    assert!(total_ratio / count as f64 <= 1.2);
}

#[test]
fn unbounded_clusterers_beat_or_match_their_serial_bound() {
    // DSC / EZ / LC with free processors must never exceed serial time
    // *plus* communication they willingly pay; on chains they must hit
    // exactly serial (full collapse).
    let g = fastsched::dag::examples::chain(6, 10, 50);
    for s in all_schedulers(31) {
        if !s.is_unbounded() {
            continue;
        }
        let m = s.schedule(&g, 6).makespan();
        assert_eq!(m, 60, "{} must collapse a chain", s.name());
    }
}
