//! SoA attribute-kernel equivalence suite: the topo-keyed sweep
//! kernels (and the fused-scatter `compute_soa_into`) must agree with
//! the scalar `attributes.rs` reference **exactly** — same integers,
//! not just same order — on random layered DAGs under both homogeneous
//! and heterogeneous weight models, and across the fuzz corpus. The
//! SoA plane only changes where the sweeps read and write, never a
//! value.

use fastsched::dag::attributes::{
    b_levels_into, b_levels_topo_into, static_levels_into, static_levels_soa_into,
    static_levels_topo_into, t_levels_into, t_levels_topo_into, AttrLanes,
};
use fastsched::dag::{Dag, GraphAttributes};
use fastsched::prelude::{random_layered_dag, Cost, RandomDagConfig, TimingDatabase};
use fastsched::workloads::fuzz::fuzz_corpus;
use proptest::prelude::*;

/// Scatter a topo-position-keyed lane back to id keying.
fn to_id_space(dag: &Dag, lane: &[Cost]) -> Vec<Cost> {
    let mut out = vec![0; dag.node_count()];
    for (p, &n) in dag.topo_order().iter().enumerate() {
        out[n.index()] = lane[p];
    }
    out
}

/// Every SoA kernel against its scalar reference on one DAG.
fn assert_soa_matches_scalar(dag: &Dag, ctx: &str) {
    let mut lane = Vec::new();
    let mut scalar = Vec::new();

    t_levels_topo_into(dag, &mut lane);
    t_levels_into(dag, &mut scalar);
    assert_eq!(to_id_space(dag, &lane), scalar, "t-level diverged on {ctx}");

    b_levels_topo_into(dag, &mut lane);
    b_levels_into(dag, &mut scalar);
    assert_eq!(to_id_space(dag, &lane), scalar, "b-level diverged on {ctx}");

    static_levels_topo_into(dag, &mut lane);
    static_levels_into(dag, &mut scalar);
    assert_eq!(to_id_space(dag, &lane), scalar, "SL diverged on {ctx}");

    let mut lanes = AttrLanes::new();
    let mut soa_sl = Vec::new();
    static_levels_soa_into(dag, &mut lanes, &mut soa_sl);
    assert_eq!(soa_sl, scalar, "SL scatter diverged on {ctx}");

    let reference = GraphAttributes::compute(dag);
    let mut soa = GraphAttributes::empty();
    GraphAttributes::compute_soa_into(dag, &mut lanes, &mut soa);
    assert_eq!(soa.t_level, reference.t_level, "{ctx}");
    assert_eq!(soa.b_level, reference.b_level, "{ctx}");
    assert_eq!(soa.static_level, reference.static_level, "{ctx}");
    assert_eq!(soa.alap, reference.alap, "{ctx}");
    assert_eq!(soa.cp_length, reference.cp_length, "{ctx}");
    assert_eq!(soa.cpn, reference.cpn, "{ctx}");
}

/// Homogeneous weight model: every node and every edge costs the
/// same, so ties are everywhere and any ordering slip would surface.
fn homo_config(nodes: usize) -> RandomDagConfig {
    RandomDagConfig {
        nodes,
        out_degree: (1, 4),
        node_weight: (7, 7),
        edge_weight: (3, 3),
    }
}

/// Heterogeneous weight model: wide uniform node and edge ranges (the
/// paper's §5.2 shape at sparse degree).
fn hetero_config(nodes: usize) -> RandomDagConfig {
    RandomDagConfig {
        nodes,
        out_degree: (1, 5),
        node_weight: (1, 500),
        edge_weight: (1, 800),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random layered DAGs, homogeneous weights.
    #[test]
    fn soa_matches_scalar_homogeneous(seed in 0u64..1_000_000, nodes in 10usize..180) {
        let dag = random_layered_dag(&homo_config(nodes), seed);
        assert_soa_matches_scalar(&dag, &format!("homo seed={seed} v={nodes}"));
    }

    /// Random layered DAGs, heterogeneous weights.
    #[test]
    fn soa_matches_scalar_heterogeneous(seed in 0u64..1_000_000, nodes in 10usize..180) {
        let dag = random_layered_dag(&hetero_config(nodes), seed);
        assert_soa_matches_scalar(&dag, &format!("hetero seed={seed} v={nodes}"));
    }

    /// The shared fuzz corpus (mixed shapes: chains, forks, paper-style
    /// layered graphs) — the same graphs the scheduler equivalence
    /// suites run on.
    #[test]
    fn soa_matches_scalar_on_fuzz_corpus(seed in 0u64..1_000_000) {
        for case in fuzz_corpus(seed, 6) {
            assert_soa_matches_scalar(&case.dag, &case.name);
        }
    }
}

/// The paper-scale workload: one deterministic 2000-node §5.2 graph
/// (the BENCH_eval row the SoA sweeps are meant to speed up).
#[test]
fn soa_matches_scalar_on_paper_scale_graph() {
    let db = TimingDatabase::paragon();
    let dag = random_layered_dag(&RandomDagConfig::paper(2000, &db), 1);
    assert_soa_matches_scalar(&dag, "paper-2000");
}
