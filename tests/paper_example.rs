//! End-to-end integration test of the paper's worked example
//! (Figures 1–4 behaviours) across the whole stack.

use fastsched::dag::examples::{paper_figure1, paper_node};
use fastsched::dag::{classify_nodes, cpn_dominate_list, CpnListConfig};
use fastsched::prelude::*;

#[test]
fn figure1_attribute_table_matches_reconstruction() {
    let dag = paper_figure1();
    let attrs = GraphAttributes::compute(&dag);
    assert_eq!(attrs.cp_length, 23);
    // CPNs are exactly n1, n7, n9 — the critical path of the paper.
    let cpns: Vec<usize> = (1..=9).filter(|&k| attrs.is_cpn(paper_node(k))).collect();
    assert_eq!(cpns, vec![1, 7, 9]);
    // The critical path is the node sequence n1 → n7 → n9.
    let cp = attrs.critical_path(&dag);
    assert_eq!(cp, vec![paper_node(1), paper_node(7), paper_node(9)]);
}

#[test]
fn figure1_cpn_dominate_list_is_the_papers() {
    let dag = paper_figure1();
    let attrs = GraphAttributes::compute(&dag);
    let classes = classify_nodes(&dag, &attrs);
    let list = cpn_dominate_list(&dag, &attrs, &classes, CpnListConfig::default());
    let got: Vec<u32> = list.iter().map(|n| n.0 + 1).collect();
    assert_eq!(got, vec![1, 3, 2, 7, 6, 5, 4, 8, 9]);
}

#[test]
fn figure1_tie_breaks_behave_as_described() {
    // "n8 is considered after n6 because n6 has a smaller t-level":
    // their b-levels tie and the t-level tie-break decides.
    let dag = paper_figure1();
    let attrs = GraphAttributes::compute(&dag);
    let (n6, n8) = (paper_node(6), paper_node(8));
    assert_eq!(attrs.b_level[n6.index()], attrs.b_level[n8.index()]);
    assert!(attrs.t_level[n6.index()] < attrs.t_level[n8.index()]);
    // Same story for n3 before n2.
    let (n2, n3) = (paper_node(2), paper_node(3));
    assert_eq!(attrs.b_level[n2.index()], attrs.b_level[n3.index()]);
    assert!(attrs.t_level[n3.index()] < attrs.t_level[n2.index()]);
}

#[test]
fn figure4_fast_refines_its_initial_schedule_by_one_transfer() {
    // The paper's Figure 4(b) behaviour on the reconstruction: the
    // initial schedule (19) is strictly improved by the local search
    // (18) through a single blocking-node transfer — the analogue of
    // the paper's 24 → 23 with n6 moved to PE 3.
    let dag = paper_figure1();
    let fast = Fast::new();
    let (initial, _, _) = fast.initial_schedule(&dag, 9);
    assert_eq!(initial.makespan(), 19);
    let refined = fast.schedule(&dag, 9);
    validate(&dag, &refined).unwrap();
    assert_eq!(refined.makespan(), 18);
}

#[test]
fn figures2_3_all_baselines_schedule_the_example_legally() {
    let dag = paper_figure1();
    for s in paper_schedulers(3) {
        let schedule = s.schedule(&dag, 9);
        validate(&dag, &schedule).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        // No schedule can beat the computation along the CP.
        let cp_work: u64 = [1, 7, 9].iter().map(|&k| dag.weight(paper_node(k))).sum();
        assert!(schedule.makespan() >= cp_work);
        // Nor can any be worse than fully serial.
        assert!(schedule.makespan() <= dag.total_computation());
    }
}

#[test]
fn figure4_initial_schedule_packs_the_critical_path() {
    // The qualitative Figure 4(a) behaviour: the CP prefix n1, n3, n2,
    // n7 lands on one processor, giving n7 a start of 8.
    let dag = paper_figure1();
    let (s, _, _) = Fast::new().initial_schedule(&dag, 9);
    assert_eq!(s.makespan(), 19);
    let p = s.proc_of(paper_node(1)).unwrap();
    for k in [3, 2, 7] {
        assert_eq!(
            s.proc_of(paper_node(k)).unwrap(),
            p,
            "n{k} co-located with n1"
        );
    }
}

#[test]
fn example_pipeline_end_to_end() {
    // The full stack on the example graph: schedule → validate →
    // simulate, ideal network matches the prediction exactly.
    let dag = paper_figure1();
    let schedule = Fast::new().schedule(&dag, 9);
    let report = simulate(&dag, &schedule, &SimConfig::ideal());
    assert_eq!(report.execution_time, schedule.makespan());
    let mesh = simulate(&dag, &schedule, &SimConfig::default());
    assert!(mesh.execution_time >= schedule.makespan());
}
